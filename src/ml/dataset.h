// Dense row-major dataset used by the ML models, plus the quantile binning
// transform (FeatureBinner / BinnedMatrix) shared by GBDT training and
// batched inference.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"

namespace helios::serialize {
class Reader;
class Writer;
}  // namespace helios::serialize

namespace helios::ml {

class Dataset;

/// Result of a random train/test row split.
struct DatasetSplit;

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::size_t n_features) : n_features_(n_features) {}

  /// Append one row; `features.size()` must equal n_features().
  void add_row(std::span<const double> features, double target);

  [[nodiscard]] std::size_t rows() const noexcept { return y_.size(); }
  [[nodiscard]] std::size_t features() const noexcept { return n_features_; }
  [[nodiscard]] bool empty() const noexcept { return y_.empty(); }

  [[nodiscard]] double at(std::size_t row, std::size_t col) const noexcept {
    return x_[row * n_features_ + col];
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
    return {x_.data() + r * n_features_, n_features_};
  }
  [[nodiscard]] double target(std::size_t r) const noexcept { return y_[r]; }
  [[nodiscard]] std::span<const double> targets() const noexcept { return y_; }

  void reserve(std::size_t n) {
    x_.reserve(n * n_features_);
    y_.reserve(n);
  }

  /// Deterministic row-level split: each row goes to train with probability
  /// `train_fraction`.
  [[nodiscard]] DatasetSplit split(double train_fraction, Rng& rng) const;

 private:
  std::size_t n_features_ = 0;
  std::vector<double> x_;
  std::vector<double> y_;
};

struct DatasetSplit {
  Dataset train;
  Dataset test;
};

/// Per-feature quantile binning. Bin ids are 0..bins-1; values above the
/// last edge fall in the last bin.
class FeatureBinner {
 public:
  FeatureBinner() = default;

  /// Compute at most `max_bins` bins per feature from (a sample of) `data`.
  /// Bin ids travel as std::uint8_t, so `max_bins` is clamped to 256 — a
  /// larger budget used to wrap bin() silently instead.
  void fit(const Dataset& data, int max_bins, Rng& rng);

  /// Bin id of `value`: the count of edges < value. Both paths below avoid a
  /// mispredictable branch per step — a vectorizable counting loop for short
  /// (categorical-like) edge arrays, and a halving search whose step is a
  /// bool*offset multiply (a `? half : 0` ternary compiles to a branch that
  /// mispredicts ~half the time on quantile edges). Inline: the binning
  /// passes call this per matrix cell.
  [[nodiscard]] std::uint8_t bin(std::size_t feature, double value) const noexcept {
    const auto& edges = edges_[feature];
    if (edges.size() <= 16) {
      unsigned b = 0;
      for (const double e : edges) b += e < value ? 1u : 0u;
      return static_cast<std::uint8_t>(b);
    }
    const double* base = edges.data();
    std::size_t n = edges.size();
    while (n > 1) {
      const std::size_t half = n / 2;
      base += static_cast<std::size_t>(base[half - 1] < value) * half;
      n -= half;
    }
    return static_cast<std::uint8_t>(
        static_cast<std::size_t>(base - edges.data()) +
        static_cast<std::size_t>(base[0] < value));
  }

  /// Bin four values of the same feature with their halving searches
  /// interleaved: the four dependent-load chains are independent, so the CPU
  /// overlaps the latency that bounds bin(). Matches bin() exactly.
  void bin4(std::size_t feature, const double v[4], std::uint8_t out[4]) const noexcept {
    const auto& edges = edges_[feature];
    if (edges.size() <= 16) {
      for (int j = 0; j < 4; ++j) out[j] = bin(feature, v[j]);
      return;
    }
    const double* base = edges.data();
    const double* p0 = base;
    const double* p1 = base;
    const double* p2 = base;
    const double* p3 = base;
    std::size_t n = edges.size();
    while (n > 1) {
      const std::size_t half = n / 2;
      p0 += static_cast<std::size_t>(p0[half - 1] < v[0]) * half;
      p1 += static_cast<std::size_t>(p1[half - 1] < v[1]) * half;
      p2 += static_cast<std::size_t>(p2[half - 1] < v[2]) * half;
      p3 += static_cast<std::size_t>(p3[half - 1] < v[3]) * half;
      n -= half;
    }
    out[0] = static_cast<std::uint8_t>(static_cast<std::size_t>(p0 - base) +
                                       static_cast<std::size_t>(p0[0] < v[0]));
    out[1] = static_cast<std::uint8_t>(static_cast<std::size_t>(p1 - base) +
                                       static_cast<std::size_t>(p1[0] < v[1]));
    out[2] = static_cast<std::uint8_t>(static_cast<std::size_t>(p2 - base) +
                                       static_cast<std::size_t>(p2[0] < v[2]));
    out[3] = static_cast<std::uint8_t>(static_cast<std::size_t>(p3 - base) +
                                       static_cast<std::size_t>(p3[0] < v[3]));
  }
  [[nodiscard]] int bins(std::size_t feature) const noexcept {
    return static_cast<int>(edges_[feature].size()) + 1;
  }
  [[nodiscard]] std::size_t features() const noexcept { return edges_.size(); }
  /// Upper edge of `bin` (the split threshold "value <= edge"); bin must be
  /// < bins(feature) - 1. Note bin(f, v) <= b holds exactly iff
  /// v <= edge(f, b), so binned and raw-threshold traversals agree.
  [[nodiscard]] double edge(std::size_t feature, int bin) const noexcept {
    return edges_[feature][static_cast<std::size_t>(bin)];
  }

  /// Persist / restore the fitted edges ("BINR" section, docs/FORMATS.md).
  /// A loaded binner bins bit-identically to the saved one (edges travel as
  /// IEEE-754 bit patterns). load() throws serialize::Error on malformed
  /// input and rejects per-feature edge lists that are unsorted or would
  /// overflow the uint8 bin id.
  void save(serialize::Writer& w) const;
  void load(serialize::Reader& r);

 private:
  std::vector<std::vector<double>> edges_;  // sorted strict upper edges
};

enum class BinLayout {
  /// bins[r * features + f]: one row = adjacent bytes. The histogram engine
  /// and batched inference layout — a row's features land in 1-2 cache lines.
  kRowMajor,
  /// bins[f * rows + r]: the retained pre-histogram-engine layout.
  kColumnMajor,
};

/// Matrix of bin ids in either layout. Row-major matrices additionally carry
/// a uint16 plane of globally-offset bin ids (feature_offset[f] + bin) when
/// the total bin count fits — the GBDT histogram engine indexes its
/// concatenated per-feature histograms with them in a single add.
struct BinnedMatrix {
  /// Tail padding bytes appended to a non-empty row-major `bins` plane
  /// (bins.size() == rows * features + kSimdPad): the SIMD predict kernel
  /// reads uint8 cells with 4-byte gathers, whose final load may extend up
  /// to 3 bytes past the last cell.
  static constexpr std::size_t kSimdPad = 3;

  std::size_t rows = 0;
  std::size_t features = 0;
  BinLayout layout = BinLayout::kRowMajor;
  std::vector<std::uint8_t> bins;
  std::vector<std::uint16_t> global;   ///< row-major only; may be empty
  std::vector<int> feature_offset;     ///< exclusive prefix of bins-per-feature

  /// Row pointer; requires kRowMajor.
  [[nodiscard]] const std::uint8_t* row(std::size_t r) const noexcept {
    return bins.data() + r * features;
  }
  /// Column pointer; requires kColumnMajor.
  [[nodiscard]] const std::uint8_t* col(std::size_t f) const noexcept {
    return bins.data() + f * rows;
  }
  [[nodiscard]] std::uint8_t at(std::size_t r, std::size_t f) const noexcept {
    return layout == BinLayout::kRowMajor ? bins[r * features + f]
                                          : bins[f * rows + r];
  }
  [[nodiscard]] bool empty() const noexcept { return bins.empty(); }
};

/// Bin every value of `data` with a fitted binner, parallel on the shared
/// pool. Row-major bins in one sequential pass over the dataset; column-major
/// mirrors the legacy per-column construction (and its cost).
[[nodiscard]] BinnedMatrix bin_dataset(const Dataset& data,
                                       const FeatureBinner& binner,
                                       BinLayout layout = BinLayout::kRowMajor);

}  // namespace helios::ml
