// CES ablation: the sigma buffer and the ξ trend thresholds trade energy
// saving against wake-up churn and job impact (DESIGN.md design-choice
// callout). Sweeps on Earth, September 1-21.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "common/text_table.h"

int main() {
  using helios::TextTable;
  namespace bench = helios::bench;
  namespace core = helios::core;
  namespace sim = helios::sim;
  namespace forecast = helios::forecast;

  bench::print_header("Ablation: CES",
                      "sigma / ξ sweeps on Earth (Sep 1-21)");

  const auto& traces = bench::operated_helios_traces();
  const auto it = std::find_if(traces.begin(), traces.end(), [](const auto& t) {
    return t->cluster().name == "Earth";
  });
  const auto begin = helios::from_civil(2020, 9, 1);
  const auto end = helios::from_civil(2020, 9, 22);

  sim::SimConfig cfg;
  const auto whole = sim::ClusterSimulator((*it)->cluster(), cfg).run(**it);
  const auto history = whole.busy_nodes.between(whole.busy_nodes.begin, begin);

  auto replay = [&](core::CesConfig cc) {
    core::CesService svc(cc, std::make_unique<forecast::GBDTForecaster>());
    svc.fit(history);
    return svc.replay(**it, history, begin, end);
  };

  TextTable ts({"sigma", "avg DRS nodes", "wake-ups/day", "affected jobs",
                "node util (CES)", "saved kWh"});
  for (int sigma : {1, 2, 4, 8}) {
    core::CesConfig cc;
    cc.sigma = sigma;
    const auto r = replay(cc);
    ts.add_row({TextTable::cell(static_cast<std::int64_t>(sigma)),
                TextTable::cell(r.avg_drs_nodes, 1),
                TextTable::cell(r.daily_wakeups, 1),
                TextTable::cell(r.affected_jobs),
                TextTable::cell_pct(r.node_util_ces),
                TextTable::cell(r.saved_kwh, 0)});
  }
  std::printf("sigma sweep (xi = 0.5)\n%s\n", ts.str().c_str());

  TextTable tx({"xi (H=P)", "avg DRS nodes", "wake-ups/day", "affected jobs",
                "node util (CES)", "saved kWh"});
  for (double xi : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    core::CesConfig cc;
    cc.xi_h = xi;
    cc.xi_p = xi;
    const auto r = replay(cc);
    tx.add_row({TextTable::cell(xi, 1), TextTable::cell(r.avg_drs_nodes, 1),
                TextTable::cell(r.daily_wakeups, 1),
                TextTable::cell(r.affected_jobs),
                TextTable::cell_pct(r.node_util_ces),
                TextTable::cell(r.saved_kwh, 0)});
  }
  std::printf("trend-threshold sweep (sigma = 4)\n%s\n", tx.str().c_str());

  bench::print_expectation("larger sigma", "fewer affected jobs, less saving",
                           "see sigma sweep");
  bench::print_expectation("larger xi", "fewer sleep decisions -> less saving",
                           "see xi sweep");
  return 0;
}
