// Capacity forecasting walkthrough: derive a cluster's running-nodes series,
// backtest the four forecaster families, and produce a 24-hour demand
// forecast — the modelling core of the CES service, usable on its own for
// capacity planning.
//
// Usage: ./build/examples/example_capacity_forecasting [cluster] [scale]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "forecast/models.h"
#include "sim/simulator.h"
#include "stats/metrics.h"
#include "trace/synthetic.h"

int main(int argc, char** argv) {
  using namespace helios;
  const std::string cluster = argc > 1 ? argv[1] : "Saturn";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.1;

  auto cfg = trace::GeneratorConfig::helios(trace::helios_cluster(cluster), 42,
                                            scale);
  trace::Trace t = trace::SyntheticTraceGenerator(cfg).generate();
  sim::SimConfig sc;
  sc.backfill = true;
  const auto run = sim::ClusterSimulator(t.cluster(), sc).run(t);
  const auto series =
      run.busy_nodes.between(run.busy_nodes.begin, trace::helios_trace_end());

  const std::size_t train_n = series.index_of(from_civil(2020, 9, 1));
  std::printf("=== %s running-nodes series: %zu samples at %llds ===\n",
              cluster.c_str(), series.size(),
              static_cast<long long>(series.step));

  std::vector<std::unique_ptr<forecast::Forecaster>> models;
  models.push_back(std::make_unique<forecast::GBDTForecaster>());
  models.push_back(std::make_unique<forecast::ARForecaster>(36, 1));
  models.push_back(std::make_unique<forecast::HoltWintersForecaster>(144));
  models.push_back(std::make_unique<forecast::SeasonalNaiveForecaster>(144));

  std::printf("\nSeptember backtest (3h horizon, hourly origins):\n");
  const forecast::Forecaster* best = nullptr;
  double best_smape = 1e18;
  for (auto& m : models) {
    m->fit(series.slice(0, train_n));
    const auto bt = forecast::backtest(*m, series, train_n, 18, 6);
    const double s = stats::smape(bt.actual, bt.predicted);
    std::printf("  %-16s SMAPE %6.2f%%  MAE %5.2f nodes\n", m->name().c_str(), s,
                stats::mae(bt.actual, bt.predicted));
    if (s < best_smape) {
      best_smape = s;
      best = m.get();
    }
  }

  std::printf("\nnext-24h demand forecast (%s):\n", best->name().c_str());
  const auto pred = best->forecast(series, 144);
  for (std::size_t h = 0; h < pred.size(); h += 12) {  // every 2 hours
    std::printf("  +%2zuh: %6.1f nodes\n", h / 6, pred[h]);
  }
  return 0;
}
