#include "bench_common.h"

#include <cstdio>

#include "common/env.h"

namespace helios::bench {

double scale() {
  static const double s = env_double("HELIOS_SCALE", 0.25);
  return s;
}

std::uint64_t seed() {
  static const auto s = static_cast<std::uint64_t>(env_int("HELIOS_SEED", 42));
  return s;
}

const std::vector<trace::Trace>& helios_traces() {
  static const std::vector<trace::Trace> traces =
      trace::generate_helios(seed(), scale());
  return traces;
}

const trace::Trace& philly_trace() {
  static const trace::Trace t = trace::generate_philly(seed(), scale());
  return t;
}

void print_header(const std::string& experiment, const std::string& title,
                  const std::string& notes) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", experiment.c_str(), title.c_str());
  std::printf("synthetic Helios workload, scale=%.3g seed=%llu\n", scale(),
              static_cast<unsigned long long>(seed()));
  if (!notes.empty()) std::printf("%s\n", notes.c_str());
  std::printf("================================================================\n");
}

void print_expectation(const std::string& what, const std::string& paper,
                       const std::string& measured) {
  std::printf("  %-44s paper: %-18s measured: %s\n", what.c_str(), paper.c_str(),
              measured.c_str());
}

const std::vector<trace::Trace>& operated_helios_traces() {
  static const std::vector<trace::Trace> traces = [] {
    std::vector<trace::Trace> ts = trace::generate_helios(seed(), scale());
    for (auto& t : ts) sim::operate_fifo(t);
    return ts;
  }();
  return traces;
}

const trace::Trace& operated_philly_trace() {
  static const trace::Trace t = [] {
    trace::Trace p = trace::generate_philly(seed(), scale());
    sim::operate_fifo(p);
    return p;
  }();
  return t;
}

SchedulerStudy run_scheduler_study(const trace::Trace& full, UnixTime train_end,
                                   UnixTime eval_end) {
  SchedulerStudy study;
  const trace::Trace train = full.between(0, train_end);
  study.eval = full.between(train_end, eval_end);

  core::QssfService service;
  service.fit(train);
  core::OnlinePriorityEvaluator evaluator(service, study.eval);
  study.qssf_predicted_gpu_time = evaluator.predicted_gpu_time();
  study.qssf_actual_gpu_time = evaluator.actual_gpu_time();

  auto run = [&](sim::SchedulerPolicy policy, sim::PriorityFn fn) {
    sim::SimConfig cfg;
    cfg.policy = policy;
    cfg.priority_fn = std::move(fn);
    return sim::ClusterSimulator(study.eval.cluster(), cfg).run(study.eval);
  };
  study.fifo = run(sim::SchedulerPolicy::kFifo, nullptr);
  study.sjf = run(sim::SchedulerPolicy::kSjf, nullptr);
  study.srtf = run(sim::SchedulerPolicy::kSrtf, nullptr);
  study.qssf = run(sim::SchedulerPolicy::kQssf, evaluator.as_priority_fn());
  return study;
}

CesStudy run_ces_study(const trace::Trace& operated, UnixTime eval_begin,
                       UnixTime eval_end, bool include_vanilla) {
  // Running-nodes history from the FIFO-operated schedule.
  sim::SimConfig cfg;
  sim::ClusterSimulator sim(operated.cluster(), cfg);
  const auto whole = sim.run(operated);
  const auto history = whole.busy_nodes.between(whole.busy_nodes.begin, eval_begin);

  CesStudy study;
  core::CesConfig base_cfg;
  // The sigma buffer is an absolute node count in the paper (~4 on 143-269
  // node clusters); keep it proportional under scaled-down clusters.
  base_cfg.sigma = std::max(1, operated.cluster().nodes / 30);
  {
    core::CesService svc(base_cfg,
                         std::make_unique<forecast::GBDTForecaster>());
    svc.fit(history);
    study.ces = svc.replay(operated, history, eval_begin, eval_end);
  }
  if (include_vanilla) {
    core::CesConfig vcfg = base_cfg;
    vcfg.vanilla_drs = true;
    core::CesService svc(vcfg,
                         std::make_unique<forecast::SeasonalNaiveForecaster>(144));
    svc.fit(history);
    study.vanilla = svc.replay(operated, history, eval_begin, eval_end);
  }
  return study;
}

std::vector<double> jct_values(const sim::SimResult& r) {
  std::vector<double> out;
  out.reserve(r.outcomes.size());
  for (const auto& o : r.outcomes) {
    if (!o.rejected && o.start != trace::kNeverStarted) {
      out.push_back(static_cast<double>(o.jct()));
    }
  }
  return out;
}

std::vector<double> queue_delay_values(const sim::SimResult& r) {
  std::vector<double> out;
  out.reserve(r.outcomes.size());
  for (const auto& o : r.outcomes) {
    if (!o.rejected && o.start != trace::kNeverStarted) {
      out.push_back(static_cast<double>(o.queue_delay()));
    }
  }
  return out;
}

}  // namespace helios::bench
