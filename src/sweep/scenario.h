// Declarative scenario grids and their expansion into sweep cells.
//
// A SweepGrid names the axes of a multi-cluster study — workloads (clusters ×
// seeds × scales), scheduler policies, backfill, fault plans — and expand()
// crosses them into a flat, deterministically ordered cell list. One cell
// (ScenarioSpec) fully determines one ClusterSimulator::run: the scenario
// engine (scenario_engine.h) materializes each distinct workload exactly once
// through sweep::TraceStore and runs the cells as a task graph; the cell's
// SimResult is bit-identical to a standalone run with the same spec, config,
// and trace (pinned by tests/test_sweep.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/power_model.h"
#include "sim/fault_plan.h"
#include "sim/simulator.h"
#include "sweep/trace_store.h"

namespace helios::sweep {

/// Declarative fault axis of a grid cell. Disabled (mtbf_days <= 0) means a
/// failure-free cluster; enabled specs expand into a deterministic
/// sim::FaultPlan over the trace's simulation window (ScenarioEngine::
/// make_fault_plan), so equal specs over equal traces replay identical
/// failures.
struct FaultSpec {
  std::string name = "none";  ///< display label for reports
  double mtbf_days = 0.0;     ///< <= 0 disables fault injection
  double flaky_fraction = 0.0;
  double flaky_multiplier = 8.0;
  std::int64_t mean_downtime = 4 * 3600;
  std::uint64_t seed = 1;
  sim::FaultRestart restart = sim::FaultRestart::kRestart;

  [[nodiscard]] bool enabled() const noexcept { return mtbf_days > 0.0; }
};

/// Declarative power axis of a grid cell: the node/GPU draw profile the
/// cell's energy accounting runs under plus an optional cluster power cap
/// (budget-constrained admission; sim/simulator.h). The default is the
/// uncapped default profile, so grids that never mention power behave — and
/// count cells — exactly as before.
struct PowerSpec {
  std::string name = "uncapped";  ///< display label for reports
  double cap_watts = 0.0;         ///< <= 0 disables budget-constrained admission
  core::PowerProfile profile;

  [[nodiscard]] bool capped() const noexcept { return cap_watts > 0.0; }
};

/// One workload of a sweep: a display name plus the TraceStore key that
/// materializes it.
struct WorkloadSpec {
  std::string name;
  TraceKey key;
};

/// One cell of the grid: workload × policy × backfill × fault × power.
struct ScenarioSpec {
  WorkloadSpec workload;
  sim::SchedulerPolicy policy = sim::SchedulerPolicy::kFifo;
  bool backfill = false;
  FaultSpec fault;
  PowerSpec power;

  /// "Venus/FIFO seed=42 scale=0.05 [+backfill] [faults=<name>]
  /// [power=<name>]".
  [[nodiscard]] std::string label() const;
};

/// The declarative grid. expand() crosses the axes in a fixed nesting order
/// (cluster, scale, seed, policy, backfill, fault, power — outermost first),
/// so the cell list, its indices, and therefore every preassigned result slot
/// are a pure function of the grid.
struct SweepGrid {
  /// Workload names resolvable by TraceKey::workload(): the four Helios
  /// cluster names, "Philly", "PAI".
  std::vector<std::string> clusters;
  std::vector<sim::SchedulerPolicy> policies{sim::SchedulerPolicy::kFifo};
  std::vector<bool> backfills{false};
  std::vector<double> scales{0.25};
  std::vector<std::uint64_t> seeds{42};
  std::vector<FaultSpec> faults{FaultSpec{}};
  std::vector<PowerSpec> powers{PowerSpec{}};
  /// Replay FIFO-operated traces instead of raw ones.
  bool operated = false;

  [[nodiscard]] std::vector<ScenarioSpec> expand() const;
  [[nodiscard]] std::size_t cell_count() const noexcept;
};

/// One finished cell. wall_ms is informational (scheduling-dependent); the
/// SimResult is the deterministic payload.
struct CellResult {
  ScenarioSpec spec;
  sim::SimResult result;
  double wall_ms = 0.0;
};

/// All cells of one engine run, in expand() order.
struct SweepResult {
  std::vector<CellResult> cells;
  double wall_ms = 0.0;              ///< whole-grid wall clock
  std::int64_t traces_used = 0;      ///< distinct workload keys this run
};

/// Exact (bitwise, not approximate) equality of two simulation results —
/// outcomes, counters, per-VC stats (energy included), busy series, and the
/// energy/power outputs (cumulative joules, max watts, mean and peak power
/// series). The parity gates of the sweep drivers and tests compare through
/// this.
[[nodiscard]] bool results_identical(const sim::SimResult& a,
                                     const sim::SimResult& b) noexcept;

/// Consolidated cross-cluster comparison report: for each (scale, backfill,
/// fault, power) slice, one TextTable per metric (avg JCT, avg queue delay,
/// queued jobs, energy in kWh) with policies as rows and workloads as
/// columns; multi-seed cells aggregate as the median across seeds.
[[nodiscard]] std::string comparison_report(const SweepResult& sweep);

}  // namespace helios::sweep
