// Empirical cumulative distribution functions.
//
// The paper's figures are almost all CDFs over log-scaled x axes (job
// duration, GPU time, per-user shares). Ecdf stores the sorted sample once
// and answers F(x) queries; log_space_points() produces the x grid used by
// the figure benches so series line up across clusters.
#pragma once

#include <span>
#include <vector>

namespace helios::stats {

class Ecdf {
 public:
  Ecdf() = default;
  explicit Ecdf(std::vector<double> sample);

  /// Fraction of the sample <= x, in [0, 1].
  [[nodiscard]] double operator()(double x) const noexcept;

  /// Inverse: smallest sample value v with F(v) >= q.
  [[nodiscard]] double inverse(double q) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  [[nodiscard]] bool empty() const noexcept { return sorted_.empty(); }
  [[nodiscard]] const std::vector<double>& sorted_sample() const noexcept {
    return sorted_;
  }

  /// Evaluate at many points at once (points need not be sorted).
  [[nodiscard]] std::vector<double> evaluate(std::span<const double> xs) const;

 private:
  std::vector<double> sorted_;
};

/// `n` log-spaced points from lo to hi inclusive (lo, hi > 0).
[[nodiscard]] std::vector<double> log_space_points(double lo, double hi, int n);

/// `n` linearly spaced points from lo to hi inclusive.
[[nodiscard]] std::vector<double> lin_space_points(double lo, double hi, int n);

/// Two-sample Kolmogorov-Smirnov statistic sup_x |F1(x) - F2(x)|.
/// Used by property tests to compare generated distributions against targets.
[[nodiscard]] double ks_statistic(const Ecdf& a, const Ecdf& b);

}  // namespace helios::stats
