#include "common/csv.h"

#include <charconv>
#include <istream>
#include <ostream>

namespace helios {

namespace {
bool needs_quoting(std::string_view s) {
  return s.find_first_of(",\"\n\r") != std::string_view::npos;
}
}  // namespace

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  bool first = true;
  for (const auto& f : fields) {
    if (!first) *out_ << ',';
    first = false;
    if (needs_quoting(f)) {
      *out_ << '"';
      for (char c : f) {
        if (c == '"') *out_ << '"';
        *out_ << c;
      }
      *out_ << '"';
    } else {
      *out_ << f;
    }
  }
  *out_ << '\n';
}

std::string CsvWriter::field(double v) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  return ec == std::errc() ? std::string(buf, ptr) : std::string("nan");
}

std::string CsvWriter::field(std::int64_t v) {
  char buf[24];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  return ec == std::errc() ? std::string(buf, ptr) : std::string("0");
}

std::vector<std::string> CsvReader::parse_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  bool at_field_start = true;  // true until the field has any content
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"' && at_field_start) {
      // RFC 4180: a quote only opens a quoted field at the field start; a
      // stray quote mid-field is literal text and must not swallow the
      // delimiters after it.
      quoted = true;
      at_field_start = false;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
      at_field_start = true;
    } else if (c != '\r') {
      cur += c;
      at_field_start = false;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

std::vector<std::vector<std::string>> CsvReader::read_all(std::istream& in) {
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (is_blank_line(line)) continue;
    rows.push_back(parse_line(line));
  }
  return rows;
}

}  // namespace helios
