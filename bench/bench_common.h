// Shared helpers for the reproduction harnesses.
//
// Every bench binary regenerates one table or figure from the paper. They
// share: the workload scale knob (HELIOS_SCALE / HELIOS_SEED), a process-wide
// sweep::TraceStore so all binaries and library code draw traces from one
// generate-once cache, and uniform experiment headers so the combined bench
// output reads like the paper's evaluation section.
//
// The study runners themselves live in the library (sweep/studies.h) and run
// on the scenario engine; this header re-exports them under helios::bench so
// the fig/table binaries stay thin callers.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sweep/studies.h"
#include "sweep/trace_store.h"
#include "trace/trace.h"

namespace helios::bench {

using TracePtr = sweep::TraceStore::TracePtr;

/// Workload scale for this process (HELIOS_SCALE, default 0.25).
[[nodiscard]] double scale();

/// RNG seed for this process (HELIOS_SEED, default 42).
[[nodiscard]] std::uint64_t seed();

/// The process-wide trace cache. Bench wrappers below and any direct
/// TraceKey lookups share this one store, so each (workload, seed, scale)
/// trace is materialized at most once per process.
[[nodiscard]] sweep::TraceStore& trace_store();

/// The four Helios traces at scale()/seed(), shared immutably out of
/// trace_store() (generated on first use).
[[nodiscard]] const std::vector<TracePtr>& helios_traces();

/// The Philly trace, shared out of trace_store().
[[nodiscard]] const trace::Trace& philly_trace();

/// The Helios traces *operated under FIFO* (start times assigned by the
/// simulator, as Slurm did for the real trace).
[[nodiscard]] const std::vector<TracePtr>& operated_helios_traces();
[[nodiscard]] const trace::Trace& operated_philly_trace();

/// Prints the standard experiment banner:
///   experiment id, paper reference, scale/seed, free-form notes.
void print_header(const std::string& experiment, const std::string& title,
                  const std::string& notes = "");

/// Prints a "paper reports vs. we measure" comparison line.
void print_expectation(const std::string& what, const std::string& paper,
                       const std::string& measured);

/// Study runners (sweep/studies.h), re-exported for the harnesses.
using sweep::CesStudy;
using sweep::SchedulerStudy;
using sweep::jct_values;
using sweep::queue_delay_values;
using sweep::run_ces_study;
using sweep::run_scheduler_study;

}  // namespace helios::bench
