// The GBDT histogram engine's two hot kernels, each in a scalar and an AVX2
// form. Callers pick a form through common::simd_enabled() (common/simd.h);
// the AVX2 definitions live in gbdt_kernels_avx2.cpp, the only translation
// unit compiled with -mavx2, so the rest of the library stays baseline-ISA.
//
// Bit-exactness contract (what lets dispatch flip freely):
//  * hist_accumulate_*: pure int64 adds into packed (grad<<24)|count buckets.
//    Integer addition is associative and commutative, so gathering four
//    buckets at once and adding lane-wise equals the scalar row loop exactly.
//    Within one row all updated buckets are distinct (the uint16 global
//    plane offsets each feature into its own histogram slice), and the two
//    in-flight rows write disjoint arenas (h0/h1), so no gather/store pair
//    ever races a read-modify-write of the same bucket.
//  * predict_forest_*: for each row, accumulates out = ((out + lr*v_tree0) +
//    lr*v_tree1) + ... in tree order with separate multiply and add — the
//    identical double-precision operation sequence as the scalar
//    tree-at-a-time walk (the AVX2 TU is compiled without -mfma and uses
//    explicit mul/add intrinsics, so no fused contraction can sneak in).
//
// The AVX2 entry points must only be called when common::simd_supported()
// is true; on a binary built without AVX2 support they are compiled as
// aborting stubs.
#pragma once

#include <cstddef>
#include <cstdint>

namespace helios::ml {

struct PackedForest;

namespace kernels {

/// Rows the AVX2 bin gather may read past the end of a row-major
/// BinnedMatrix::bins plane: a 4-byte epi32 gather of the last uint8 cell
/// touches 3 bytes beyond it. bin_dataset() pads the plane by this much.
inline constexpr std::size_t kBinGatherPad = 3;

/// Accumulate rows[lo, hi) of the uint16 globally-offset bin plane into two
/// packed histogram arenas (h0/h1, each `total_bins` buckets; caller merges
/// h1 into h0): h[gbins[r*p + f]] += (grad[r] << 24) | 1 for every feature.
/// Alternating rows between the arenas hides the store-to-load forward that
/// serializes consecutive same-bucket updates.
void hist_accumulate_scalar(const std::uint16_t* gbins, std::size_t p,
                            const std::uint32_t* rows, std::size_t lo,
                            std::size_t hi, const std::int32_t* grad,
                            std::int64_t* h0, std::int64_t* h1) noexcept;

/// AVX2 form: per row, 4 bucket gathers + lane adds at a time, two rows in
/// flight. Bit-identical to hist_accumulate_scalar.
void hist_accumulate_avx2(const std::uint16_t* gbins, std::size_t p,
                          const std::uint32_t* rows, std::size_t lo,
                          std::size_t hi, const std::int32_t* grad,
                          std::int64_t* h0, std::int64_t* h1) noexcept;

/// One row's forest walk over the implicit-heap SoA layout: returns base
/// plus lr * leaf_value summed tree-at-a-time. `bins` is the row-major uint8
/// plane. This is the scalar twin of (and the tail handler for) the blocked
/// AVX2 walk below.
[[nodiscard]] double predict_forest_row_scalar(const PackedForest& forest,
                                               const std::uint8_t* bins,
                                               std::size_t p, std::size_t row,
                                               double learning_rate,
                                               double base) noexcept;

/// AVX2 batched walk over rows [lo, hi): blocks of 16 rows (two 8-row lane
/// groups) walk trees two at a time through the implicit heap — gather
/// packed splits, gather the rows' bins for the split features, compare,
/// advance idx = 2*idx + 1 + go_right, repeat forest.levels times — then
/// gather leaf values and accumulate into out[r] in tree order. The four
/// independent walk chains hide the latency of the dependent split->bins
/// gather pair. Rows left over under the block width fall back to
/// predict_forest_row_scalar. Requires the bins plane padded by
/// kBinGatherPad and rows*p + p <= INT32_MAX (callers guard).
void predict_forest_avx2(const PackedForest& forest, const std::uint8_t* bins,
                         std::size_t p, std::size_t lo, std::size_t hi,
                         double learning_rate, double* out) noexcept;

}  // namespace kernels
}  // namespace helios::ml
