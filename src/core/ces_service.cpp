#include "core/ces_service.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <queue>

#include "sim/bucket_integrator.h"
#include "sim/simulator.h"
#include "stats/metrics.h"

namespace helios::core {

using trace::JobRecord;
using trace::Trace;

CesService::CesService(CesConfig config,
                       std::unique_ptr<forecast::Forecaster> model)
    : config_(config), model_(std::move(model)) {}

void CesService::fit(const forecast::TimeSeries& running_nodes_history) {
  fitted_history_ = running_nodes_history;
  model_->fit(fitted_history_);
}

void CesService::update(const Trace& new_data) {
  // Re-derive the running-nodes series by operating the new data under FIFO
  // and re-fit the forecaster.
  Trace copy = new_data;
  copy.sort_by_submit_time();
  const auto r = sim::operate_fifo(copy, config_.series_step);
  fit(r.busy_nodes);
}

namespace {

struct Finish {
  std::int64_t time = 0;
  std::size_t job = 0;  // index in eval trace
  bool operator>(const Finish& o) const noexcept { return time > o.time; }
};

}  // namespace

CesResult CesService::replay(const Trace& eval_full,
                             const forecast::TimeSeries& history, UnixTime begin,
                             UnixTime end) const {
  CesResult result;
  const Trace eval = eval_full.between(begin, end);
  result.total_nodes = eval.cluster().nodes;
  const double span_days =
      static_cast<double>(end - begin) / static_cast<double>(kSecondsPerDay);

  // ---- baseline: every node always powered --------------------------------
  sim::SimConfig base_cfg;
  base_cfg.policy = sim::SchedulerPolicy::kFifo;
  base_cfg.series_step = config_.series_step;
  sim::ClusterSimulator base_sim(eval.cluster(), base_cfg);
  const auto baseline = base_sim.run(eval);
  {
    double busy = 0.0;
    const auto& bn = baseline.busy_nodes;
    const std::size_t window_buckets = std::min(
        bn.values.size(),
        static_cast<std::size_t>((end - begin) / config_.series_step));
    for (std::size_t i = 0; i < window_buckets; ++i) busy += bn.values[i];
    result.node_util_original =
        window_buckets > 0 && result.total_nodes > 0
            ? busy / static_cast<double>(window_buckets) / result.total_nodes
            : 0.0;
  }
  std::vector<std::int64_t> baseline_delay(eval.size(), 0);
  for (const auto& o : baseline.outcomes) {
    if (!o.rejected) baseline_delay[o.trace_index] = o.queue_delay();
  }

  // ---- CES replay ----------------------------------------------------------
  sim::ClusterState state(eval.cluster());
  const int gpn = eval.cluster().gpus_per_node;

  // VC interner id -> spec index.
  std::vector<int> vc_of_id(eval.vcs().size(), -1);
  for (int vi = 0; vi < static_cast<int>(eval.cluster().vcs.size()); ++vi) {
    const auto id =
        eval.vcs().find(eval.cluster().vcs[static_cast<std::size_t>(vi)].name);
    if (id != StringInterner::kNotFound) vc_of_id[id] = vi;
  }

  std::vector<std::size_t> gpu_jobs;
  for (std::size_t i = 0; i < eval.size(); ++i) {
    if (eval.jobs()[i].is_gpu_job()) gpu_jobs.push_back(i);
  }
  result.total_jobs = static_cast<std::int64_t>(gpu_jobs.size());

  std::vector<std::deque<std::size_t>> queues(eval.cluster().vcs.size());
  std::priority_queue<Finish, std::vector<Finish>, std::greater<>> finishes;
  std::vector<sim::Allocation> allocs(eval.size());
  std::vector<std::int64_t> start_time(eval.size(), trace::kNeverStarted);
  std::vector<bool> boot_affected(eval.size(), false);

  // Observed running-nodes samples: history tail + replay observations; this
  // is the forecaster's lag buffer.
  forecast::TimeSeries observed = history;
  if (observed.step != config_.series_step) {
    observed.values.clear();
    observed.begin = begin;
    observed.step = config_.series_step;
  }

  sim::BucketIntegrator running_acc(begin, end, config_.series_step);
  sim::BucketIntegrator active_acc(begin, end, config_.series_step);
  result.predicted_nodes.begin = begin;
  result.predicted_nodes.step = config_.series_step;
  std::vector<double> predicted_samples;
  std::vector<double> actual_samples;

  double sleeping_node_seconds = 0.0;
  std::int64_t last_account = begin;
  auto account = [&](std::int64_t now) {
    if (now <= last_account) return;
    running_acc.add(last_account, now, state.busy_nodes());
    active_acc.add(last_account, now, state.active_nodes());
    sleeping_node_seconds += static_cast<double>(state.sleeping_nodes()) *
                             static_cast<double>(now - last_account);
    last_account = now;
  };

  auto wake_for_vc = [&](int vc, int gpus_short, std::int64_t now) {
    const int nodes_needed =
        (gpus_short + gpn - 1) / gpn + config_.sigma;  // R - CA + sigma
    const int woken = state.wake_nodes_in_vc(vc, nodes_needed, now,
                                             config_.boot_delay);
    if (woken > 0) {
      ++result.wakeup_events;
      result.woken_nodes += woken;
    }
  };

  auto schedule_vc = [&](int vc, std::int64_t now) {
    auto& q = queues[static_cast<std::size_t>(vc)];
    while (!q.empty()) {
      const std::size_t ji = q.front();
      const JobRecord& j = eval.jobs()[ji];
      if (!state.can_ever_fit(vc, j.num_gpus)) {
        q.pop_front();  // impossible job: drop (counted as unaffected)
        start_time[ji] = j.submit_time;
        continue;
      }
      auto alloc = state.try_allocate(vc, j.num_gpus);
      if (!alloc) {
        // Fragmentation rescue: the arrival check compares totals, but gang
        // placement may still fail (a 16-GPU job needs whole free nodes).
        // If the VC has sleeping capacity and nothing already booting for
        // it, wake enough nodes for the head job.
        if (state.booting_nodes_in_vc(vc) == 0 &&
            state.sleeping_nodes_in_vc(vc) > 0) {
          const int shortfall =
              std::max(gpn, j.num_gpus - state.free_gpus(vc));
          wake_for_vc(vc, shortfall, now);
        }
        // The head job is held back while a reboot it needs is in flight:
        // this is the paper's "affected by the 5-minute boot" population.
        if (state.booting_nodes_in_vc(vc) > 0) boot_affected[ji] = true;
        // Greedy backfill (production Slurm behaviour; see SimConfig).
        for (auto bit = std::next(q.begin()); bit != q.end();) {
          const std::size_t bji = *bit;
          auto balloc = state.try_allocate(vc, eval.jobs()[bji].num_gpus);
          if (balloc) {
            allocs[bji] = *balloc;
            start_time[bji] = now;
            finishes.push(
                {now + std::max<std::int32_t>(1, eval.jobs()[bji].duration), bji});
            bit = q.erase(bit);
          } else {
            ++bit;
          }
        }
        break;
      }
      q.pop_front();
      allocs[ji] = *alloc;
      start_time[ji] = now;
      finishes.push({now + std::max<std::int32_t>(1, j.duration), ji});
    }
  };

  std::size_t next_arrival = 0;
  std::int64_t next_check = begin + config_.check_interval;
  const auto horizon_steps =
      static_cast<int>(config_.future_window / config_.series_step);
  const auto recent_steps =
      static_cast<std::size_t>(config_.recent_window / config_.series_step);

  for (;;) {
    const std::int64_t arrival_time =
        next_arrival < gpu_jobs.size()
            ? eval.jobs()[gpu_jobs[next_arrival]].submit_time
            : std::numeric_limits<std::int64_t>::max();
    const std::int64_t finish_time =
        finishes.empty() ? std::numeric_limits<std::int64_t>::max()
                         : finishes.top().time;
    const auto boot = state.next_boot_ready();
    const std::int64_t boot_time =
        boot ? *boot : std::numeric_limits<std::int64_t>::max();
    const std::int64_t check_time =
        next_check < end ? next_check : std::numeric_limits<std::int64_t>::max();
    const std::int64_t now =
        std::min({arrival_time, finish_time, boot_time, check_time});
    if (now == std::numeric_limits<std::int64_t>::max()) break;
    account(now);

    std::vector<int> dirty;
    // 1) completions.
    while (!finishes.empty() && finishes.top().time <= now) {
      const Finish f = finishes.top();
      finishes.pop();
      state.release(allocs[f.job]);
      const auto id = eval.jobs()[f.job].vc;
      if (id < vc_of_id.size() && vc_of_id[id] >= 0) dirty.push_back(vc_of_id[id]);
    }
    // 2) boot completions make nodes schedulable.
    if (boot_time <= now) {
      state.finish_boots(now);
      for (int vc = 0; vc < static_cast<int>(queues.size()); ++vc) {
        if (!queues[static_cast<std::size_t>(vc)].empty()) dirty.push_back(vc);
      }
    }
    // 3) arrivals: JobArrivalCheck then enqueue.
    while (next_arrival < gpu_jobs.size() &&
           eval.jobs()[gpu_jobs[next_arrival]].submit_time <= now) {
      const std::size_t ji = gpu_jobs[next_arrival];
      ++next_arrival;
      const JobRecord& j = eval.jobs()[ji];
      const int vc = j.vc < vc_of_id.size() ? vc_of_id[j.vc] : -1;
      if (vc < 0) {
        start_time[ji] = j.submit_time;
        continue;
      }
      const int free = state.free_gpus(vc);
      if (free < j.num_gpus) wake_for_vc(vc, j.num_gpus - free, now);
      queues[static_cast<std::size_t>(vc)].push_back(ji);
      dirty.push_back(vc);
    }
    // 4) scheduling.
    std::sort(dirty.begin(), dirty.end());
    dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
    for (int vc : dirty) schedule_vc(vc, now);

    // 5) PeriodicCheck.
    if (check_time <= now) {
      next_check += config_.check_interval;
      const double running_now = state.busy_nodes();
      observed.values.push_back(running_now);
      actual_samples.push_back(running_now);

      // One-step prediction (for Figure 14's "prediction" curve) and the
      // future trend over the full horizon.
      const auto pred = model_->forecast(observed, horizon_steps);
      predicted_samples.push_back(pred.empty() ? running_now : pred.front());
      // Expected demand at the end of the future window: mean of the last
      // few horizon steps (robust to single-step forecast noise).
      double pred_future = running_now;
      if (!pred.empty()) {
        const std::size_t tail = std::min<std::size_t>(3, pred.size());
        pred_future = 0.0;
        for (std::size_t k = pred.size() - tail; k < pred.size(); ++k) {
          pred_future += pred[k];
        }
        pred_future /= static_cast<double>(tail);
      }

      const std::size_t n = observed.values.size();
      const double running_past =
          n > recent_steps ? observed.values[n - 1 - recent_steps] : running_now;
      const double trend_recent = running_past - running_now;   // T_H
      const double trend_future = running_now - pred_future;    // T_P

      const bool sleep_ok =
          config_.vanilla_drs ||
          (trend_recent >= config_.xi_h && trend_future >= config_.xi_p);
      if (sleep_ok) {
        const int target_active =
            std::min(result.total_nodes,
                     static_cast<int>(running_now) + config_.sigma);
        int surplus = state.active_nodes() - target_active;
        // Sleep per VC, keeping a proportional slice of the sigma buffer
        // idle in each so arrivals anywhere rarely hit a boot wait.
        const int vcs = state.vc_count();
        for (int vc = 0; vc < vcs && surplus > 0; ++vc) {
          const int vc_nodes =
              static_cast<int>(state.vc_node_indices(vc).size());
          const int vc_buffer = std::max(
              1, (config_.sigma * vc_nodes + result.total_nodes - 1) /
                     std::max(1, result.total_nodes));
          const int can =
              std::min(surplus, state.idle_active_nodes_in_vc(vc) - vc_buffer);
          if (can > 0) surplus -= state.sleep_idle_nodes_in_vc(vc, can);
        }
      }
    }
  }
  account(end);

  // ---- metrics --------------------------------------------------------------
  result.running_nodes = running_acc.mean_series();
  result.active_nodes = active_acc.mean_series();
  result.predicted_nodes.values = predicted_samples;
  result.avg_drs_nodes =
      sleeping_node_seconds / static_cast<double>(end - begin);
  result.daily_wakeups =
      span_days > 0.0 ? static_cast<double>(result.wakeup_events) / span_days : 0.0;
  result.avg_woken_per_wakeup =
      result.wakeup_events > 0
          ? static_cast<double>(result.woken_nodes) /
                static_cast<double>(result.wakeup_events)
          : 0.0;
  {
    double busy = 0.0;
    double active = 0.0;
    for (std::size_t i = 0; i < result.running_nodes.values.size(); ++i) {
      busy += result.running_nodes.values[i];
      active += result.active_nodes.values[i];
    }
    result.node_util_ces = active > 0.0 ? busy / active : 0.0;
  }
  for (std::size_t i = 0; i < eval.size(); ++i) {
    if (boot_affected[i]) ++result.affected_jobs;
  }
  (void)baseline_delay;
  result.saved_kwh = config_.power.saved_kwh(sleeping_node_seconds);
  result.annualized_kwh = config_.power.annualized_kwh(result.saved_kwh, span_days);
  result.forecast_smape = stats::smape(actual_samples, predicted_samples);
  return result;
}

}  // namespace helios::core
