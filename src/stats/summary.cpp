#include "stats/summary.h"

#include <algorithm>
#include <cmath>

namespace helios::stats {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  mean_ += delta * nb / nt;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double quantile_sorted(std::span<const double> sorted, double q) noexcept {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double quantile(std::span<const double> data, double q) {
  std::vector<double> copy(data.begin(), data.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, q);
}

double median(std::span<const double> data) { return quantile(data, 0.5); }

double mean(std::span<const double> data) noexcept {
  if (data.empty()) return 0.0;
  double s = 0.0;
  for (double x : data) s += x;
  return s / static_cast<double>(data.size());
}

double stddev(std::span<const double> data) noexcept {
  RunningStats rs;
  for (double x : data) rs.add(x);
  return rs.stddev();
}

BoxStats box_stats(std::span<const double> data) {
  BoxStats b;
  if (data.empty()) return b;
  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());
  b.count = static_cast<std::int64_t>(sorted.size());
  b.q1 = quantile_sorted(sorted, 0.25);
  b.median = quantile_sorted(sorted, 0.5);
  b.q3 = quantile_sorted(sorted, 0.75);
  b.mean = mean(sorted);
  const double lo_fence = b.q1 - 1.5 * b.iqr();
  const double hi_fence = b.q3 + 1.5 * b.iqr();
  b.whisker_lo = sorted.front();
  b.whisker_hi = sorted.back();
  for (double x : sorted) {
    if (x >= lo_fence) {
      b.whisker_lo = x;
      break;
    }
  }
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
    if (*it <= hi_fence) {
      b.whisker_hi = *it;
      break;
    }
  }
  return b;
}

}  // namespace helios::stats
