#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "common/csv.h"
#include "common/env.h"
#include "common/interner.h"
#include "common/text_table.h"
#include "common/thread_pool.h"

namespace helios {
namespace {

TEST(Interner, DenseIdsAndRoundTrip) {
  StringInterner in;
  EXPECT_EQ(in.intern("alpha"), 0u);
  EXPECT_EQ(in.intern("beta"), 1u);
  EXPECT_EQ(in.intern("alpha"), 0u);
  EXPECT_EQ(in.size(), 2u);
  EXPECT_EQ(in.str(0), "alpha");
  EXPECT_EQ(in.find("beta"), 1u);
  EXPECT_EQ(in.find("gamma"), StringInterner::kNotFound);
}

TEST(Csv, QuotedRoundTrip) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"plain", "with,comma", "with\"quote", "with\nnewline"});
  const std::string line = os.str();
  // Parse the single physical line produced for the first three fields.
  const auto fields =
      CsvReader::parse_line("plain,\"with,comma\",\"with\"\"quote\"");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "plain");
  EXPECT_EQ(fields[1], "with,comma");
  EXPECT_EQ(fields[2], "with\"quote");
}

TEST(Csv, NumericFieldsRoundTrip) {
  EXPECT_EQ(CsvWriter::field(static_cast<std::int64_t>(-42)), "-42");
  const std::string d = CsvWriter::field(3.25);
  EXPECT_EQ(std::stod(d), 3.25);
}

TEST(Csv, ReadAllSkipsEmptyLines) {
  std::istringstream in("a,b\n\nc,d\n");
  const auto rows = CsvReader::read_all(in);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "d");
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2"});
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, NumericCells) {
  EXPECT_EQ(TextTable::cell(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::cell(static_cast<std::int64_t>(42)), "42");
  EXPECT_EQ(TextTable::cell_grouped(1753000), "1,753,000");
  EXPECT_EQ(TextTable::cell_grouped(-1234), "-1,234");
  EXPECT_EQ(TextTable::cell_pct(0.821), "82.1%");
}

TEST(ThreadPool, ParallelForCoversRange) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; }, 10);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForChunksPartition) {
  std::atomic<std::size_t> total{0};
  parallel_for_chunks(
      5, 1005,
      [&](std::size_t lo, std::size_t hi) { total += hi - lo; }, 8);
  EXPECT_EQ(total.load(), 1000u);
}

TEST(ThreadPool, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(0, 100, [](std::size_t i) {
        if (i == 57) throw std::runtime_error("boom");
      }, 1),
      std::runtime_error);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  parallel_for(10, 10, [](std::size_t) { FAIL(); });
}

TEST(Env, FallbacksAndParsing) {
  EXPECT_DOUBLE_EQ(env_double("HELIOS_TEST_UNSET_VAR", 1.5), 1.5);
  EXPECT_EQ(env_int("HELIOS_TEST_UNSET_VAR", 7), 7);
  ::setenv("HELIOS_TEST_SET_VAR", "2.25", 1);
  EXPECT_DOUBLE_EQ(env_double("HELIOS_TEST_SET_VAR", 0.0), 2.25);
  ::setenv("HELIOS_TEST_SET_VAR", "19", 1);
  EXPECT_EQ(env_int("HELIOS_TEST_SET_VAR", 0), 19);
  EXPECT_EQ(env_string("HELIOS_TEST_SET_VAR", ""), "19");
  ::unsetenv("HELIOS_TEST_SET_VAR");
}

}  // namespace
}  // namespace helios
