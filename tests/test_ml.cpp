#include <gtest/gtest.h>

#include <cmath>

#include "ml/dataset.h"
#include "ml/gbdt.h"
#include "ml/levenshtein.h"
#include "ml/linear.h"
#include "stats/metrics.h"

namespace helios::ml {
namespace {

// ---------------------------------------------------------------------------
// Levenshtein
// ---------------------------------------------------------------------------

TEST(Levenshtein, ClassicCases) {
  EXPECT_EQ(levenshtein("kitten", "sitting"), 3u);
  EXPECT_EQ(levenshtein("flaw", "lawn"), 2u);
  EXPECT_EQ(levenshtein("", "abc"), 3u);
  EXPECT_EQ(levenshtein("abc", ""), 3u);
  EXPECT_EQ(levenshtein("same", "same"), 0u);
}

TEST(Levenshtein, Symmetry) {
  EXPECT_EQ(levenshtein("train_resnet50", "train_resnet101"),
            levenshtein("train_resnet101", "train_resnet50"));
}

TEST(Levenshtein, NormalizedRange) {
  EXPECT_DOUBLE_EQ(normalized_levenshtein("", ""), 0.0);
  EXPECT_DOUBLE_EQ(normalized_levenshtein("abc", "abc"), 0.0);
  EXPECT_DOUBLE_EQ(normalized_levenshtein("abc", "xyz"), 1.0);
  EXPECT_NEAR(normalized_levenshtein("u1_train_bert", "u1_train_bert_v2"),
              3.0 / 16.0, 1e-12);
}

TEST(Levenshtein, WithinDistanceAgreesWithExact) {
  const char* names[] = {"u1_train_bert", "u1_train_bert_v2", "u2_eval_gpt2",
                         "debug", "u1_train_resnet50", "query_state"};
  for (const char* a : names) {
    for (const char* b : names) {
      const std::size_t d = levenshtein(a, b);
      for (std::size_t limit : {0u, 1u, 2u, 4u, 8u, 16u}) {
        EXPECT_EQ(within_distance(a, b, limit), d <= limit)
            << a << " vs " << b << " limit " << limit;
      }
    }
  }
}

TEST(NameBucketizer, GroupsVariantsSplitsUnrelated) {
  NameBucketizer buckets(0.3);
  const auto b1 = buckets.bucket("u042_train_resnet50");
  const auto b2 = buckets.bucket("u042_train_resnet50_v1");
  const auto b3 = buckets.bucket("u042_train_resnet50_v2");
  const auto b4 = buckets.bucket("u913_preprocess_pointnet");
  EXPECT_EQ(b1, b2);
  EXPECT_EQ(b1, b3);
  EXPECT_NE(b1, b4);
  EXPECT_EQ(buckets.bucket_count(), 2u);
}

TEST(NameBucketizer, LookupDoesNotCreate) {
  NameBucketizer buckets(0.3);
  buckets.bucket("alpha_job_name");
  EXPECT_EQ(buckets.lookup("alpha_job_name"), 0u);
  EXPECT_EQ(buckets.lookup("alpha_job_name_v3"), 0u);
  EXPECT_EQ(buckets.lookup("completely_different_thing"),
            NameBucketizer::kNoBucket);
  EXPECT_EQ(buckets.bucket_count(), 1u);
}

// ---------------------------------------------------------------------------
// Dataset
// ---------------------------------------------------------------------------

TEST(Dataset, RowsAndSplit) {
  Dataset d(2);
  for (int i = 0; i < 1000; ++i) {
    const double row[] = {static_cast<double>(i), static_cast<double>(i % 7)};
    d.add_row(row, i * 2.0);
  }
  EXPECT_EQ(d.rows(), 1000u);
  EXPECT_DOUBLE_EQ(d.at(10, 0), 10.0);
  EXPECT_DOUBLE_EQ(d.target(10), 20.0);
  Rng rng(5);
  const auto s = d.split(0.8, rng);
  EXPECT_EQ(s.train.rows() + s.test.rows(), 1000u);
  EXPECT_NEAR(static_cast<double>(s.train.rows()), 800.0, 60.0);
}

// ---------------------------------------------------------------------------
// GBDT
// ---------------------------------------------------------------------------

Dataset make_linear_dataset(std::size_t n, double noise, Rng& rng) {
  Dataset d(3);
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform(-5.0, 5.0);
    const double x1 = rng.uniform(0.0, 1.0);
    const double x2 = rng.uniform(-1.0, 1.0);  // irrelevant
    const double row[] = {x0, x1, x2};
    d.add_row(row, 3.0 * x0 + 10.0 * x1 + rng.normal(0.0, noise));
  }
  return d;
}

TEST(FeatureBinner, CategoricalGetsOneBinPerValue) {
  Dataset d(1);
  for (int i = 0; i < 100; ++i) {
    const double row[] = {static_cast<double>(i % 5)};
    d.add_row(row, 0.0);
  }
  Rng rng(1);
  FeatureBinner binner;
  binner.fit(d, 64, rng);
  EXPECT_EQ(binner.bins(0), 5);
  EXPECT_EQ(binner.bin(0, 0.0), 0);
  EXPECT_EQ(binner.bin(0, 4.0), 4);
  EXPECT_EQ(binner.bin(0, 99.0), 4);  // clamped
}

TEST(Gbdt, FitsLinearFunction) {
  Rng rng(42);
  const Dataset train = make_linear_dataset(8000, 0.1, rng);
  const Dataset test = make_linear_dataset(2000, 0.1, rng);
  GBDTConfig cfg;
  cfg.n_trees = 80;
  cfg.max_depth = 5;
  GBDTRegressor model(cfg);
  model.fit(train);
  const auto pred = model.predict_many(test);
  std::vector<double> actual(test.targets().begin(), test.targets().end());
  EXPECT_GT(stats::r2(actual, pred), 0.95);
}

TEST(Gbdt, TrainingLossDecreases) {
  Rng rng(7);
  const Dataset train = make_linear_dataset(4000, 0.5, rng);
  GBDTRegressor model;
  model.fit(train);
  const auto& rmse = model.training_rmse();
  ASSERT_GT(rmse.size(), 10u);
  EXPECT_LT(rmse.back(), 0.5 * rmse.front());
  for (std::size_t i = 5; i < rmse.size(); i += 10) {
    EXPECT_LT(rmse[i], rmse[0]);
  }
}

TEST(Gbdt, FeatureImportanceFindsInformative) {
  Rng rng(9);
  const Dataset train = make_linear_dataset(6000, 0.1, rng);
  GBDTRegressor model;
  model.fit(train);
  const auto imp = model.feature_importance();
  ASSERT_EQ(imp.size(), 3u);
  EXPECT_GT(imp[0], imp[2] * 10.0);  // x0 informative, x2 noise
  EXPECT_GT(imp[1], imp[2] * 10.0);
}

TEST(Gbdt, Deterministic) {
  Rng rng(11);
  const Dataset train = make_linear_dataset(2000, 0.3, rng);
  GBDTRegressor a;
  GBDTRegressor b;
  a.fit(train);
  b.fit(train);
  const double probe[] = {1.0, 0.5, 0.0};
  EXPECT_DOUBLE_EQ(a.predict(probe), b.predict(probe));
}

TEST(Gbdt, HandlesStepFunction) {
  // Trees should nail piecewise-constant targets that linear models cannot.
  Dataset d(1);
  Rng rng(13);
  for (int i = 0; i < 4000; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    const double row[] = {x};
    d.add_row(row, x < 3.0 ? 1.0 : x < 7.0 ? 5.0 : -2.0);
  }
  GBDTRegressor model;
  model.fit(d);
  const double p1[] = {1.0};
  const double p2[] = {5.0};
  const double p3[] = {9.0};
  EXPECT_NEAR(model.predict(p1), 1.0, 0.3);
  EXPECT_NEAR(model.predict(p2), 5.0, 0.3);
  EXPECT_NEAR(model.predict(p3), -2.0, 0.3);
}

TEST(FeatureBinner, ClampsBinBudgetToByteRange) {
  // > 256 bins cannot be represented in a uint8 bin id; the budget used to
  // wrap silently (bin 256 -> 0), scrambling splits. It must clamp instead.
  Dataset d(1);
  for (int i = 0; i < 3000; ++i) {
    const double row[] = {static_cast<double>(i)};  // 3000 distinct values
    d.add_row(row, 0.0);
  }
  Rng rng(3);
  for (const int budget : {256, 257, 300, 100000}) {
    FeatureBinner binner;
    binner.fit(d, budget, rng);
    ASSERT_LE(binner.bins(0), 256) << "budget " << budget;
    // Monotone bin ids end-to-end: no wraparound anywhere in the range.
    int prev = -1;
    for (int i = 0; i < 3000; i += 7) {
      const int b = binner.bin(0, static_cast<double>(i));
      ASSERT_GE(b, prev);
      prev = b;
    }
    ASSERT_EQ(prev, binner.bins(0) - 1);  // top value lands in the last bin
  }
  // The categorical one-bin-per-value path must clamp too: 500 distinct
  // values with a 1000-bin budget used to yield 501 bins and wrap.
  Dataset cat(1);
  for (int i = 0; i < 500; ++i) {
    const double row[] = {static_cast<double>(i)};
    cat.add_row(row, 0.0);
  }
  FeatureBinner binner;
  binner.fit(cat, 1000, rng);
  EXPECT_LE(binner.bins(0), 256);
  EXPECT_EQ(binner.bin(0, 499.0), binner.bins(0) - 1);
}

TEST(Gbdt, OversizedBinBudgetStillLearns) {
  Rng rng(23);
  const Dataset train = make_linear_dataset(4000, 0.1, rng);
  GBDTConfig cfg;
  cfg.max_bins = 300;  // pre-clamp this silently wrapped bin ids
  cfg.n_trees = 40;
  GBDTRegressor model(cfg);
  model.fit(train);
  const double probe[] = {2.0, 0.5, 0.0};
  EXPECT_NEAR(model.predict(probe), 11.0, 1.5);
}

TEST(Gbdt, EmptyAfterRowCapFallsBackToEmptyModel) {
  // With a tiny input and an aggressive cap, the Bernoulli row cap can
  // reject every row; fit() must yield a clean empty model, not NaNs from a
  // 0/0 base prediction.
  Dataset tiny(1);
  for (int i = 0; i < 3; ++i) {
    const double row[] = {static_cast<double>(i)};
    tiny.add_row(row, 1.0 + i);
  }
  const double probe[] = {1.0};
  bool saw_empty_capped_fit = false;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    GBDTConfig cfg;
    cfg.max_training_rows = 1;  // keep probability ~(2/3)^3 per seed
    cfg.seed = seed;
    GBDTRegressor model(cfg);
    model.fit(tiny);
    const double p = model.predict(probe);
    ASSERT_FALSE(std::isnan(p)) << "seed " << seed;
    if (!model.trained() && model.training_rmse().empty()) {
      saw_empty_capped_fit = p == 0.0;
      if (saw_empty_capped_fit) break;
    }
  }
  // At least one seed must have exercised the empty-after-cap guard.
  EXPECT_TRUE(saw_empty_capped_fit);
}

TEST(Gbdt, DenormalTinyTargetsStayFinite) {
  // Residuals around 1e-300 push the quantization exponent past ldexp's
  // range; the scale must saturate instead of going infinite (which turned
  // every quantized gradient into INT_MIN garbage).
  Dataset d(1);
  Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    const double row[] = {static_cast<double>(i % 7)};
    d.add_row(row, 1e-300 * static_cast<double>(i % 5));
  }
  for (const auto engine : {GBDTEngine::kHistogram, GBDTEngine::kReference}) {
    GBDTConfig cfg;
    cfg.n_trees = 5;
    cfg.min_samples_leaf = 5;
    cfg.engine = engine;
    GBDTRegressor model(cfg);
    model.fit(d);
    const double probe[] = {3.0};
    EXPECT_TRUE(std::isfinite(model.predict(probe)));
    for (const double rmse : model.training_rmse()) {
      EXPECT_TRUE(std::isfinite(rmse));
    }
  }
}

TEST(Gbdt, EmptyAndTinyDatasets) {
  GBDTRegressor model;
  model.fit(Dataset(2));
  EXPECT_FALSE(model.trained());
  const double probe[] = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(model.predict(probe), 0.0);

  Dataset tiny(1);
  const double row[] = {1.0};
  tiny.add_row(row, 5.0);
  model.fit(tiny);
  EXPECT_NEAR(model.predict(row), 5.0, 1e-9);  // base prediction = mean
}

TEST(Gbdt, MaxTrainingRowsCap) {
  Rng rng(17);
  const Dataset train = make_linear_dataset(20000, 0.2, rng);
  GBDTConfig cfg;
  cfg.max_training_rows = 2000;
  cfg.n_trees = 30;
  GBDTRegressor model(cfg);
  model.fit(train);  // should be fast and still learn the signal
  const double probe[] = {2.0, 0.5, 0.0};
  EXPECT_NEAR(model.predict(probe), 11.0, 1.5);
}

TEST(RegressionTree, SingleSplit) {
  Dataset d(1);
  for (int i = 0; i < 200; ++i) {
    const double row[] = {static_cast<double>(i)};
    d.add_row(row, i < 100 ? 0.0 : 10.0);
  }
  Rng rng(1);
  FeatureBinner binner;
  binner.fit(d, 64, rng);
  std::vector<std::uint32_t> rows(d.rows());
  for (std::size_t r = 0; r < rows.size(); ++r) rows[r] = static_cast<std::uint32_t>(r);
  const auto grad = QuantizedGradients::from(d.targets());
  std::vector<std::int32_t> leaf_of(d.rows(), -1);
  GBDTConfig cfg;
  cfg.max_depth = 1;
  cfg.min_samples_leaf = 5;
  cfg.lambda = 0.0;
  for (const auto engine : {GBDTEngine::kHistogram, GBDTEngine::kReference}) {
    cfg.engine = engine;
    // Each engine consumes its own layout: row-major for the histogram
    // engine, the legacy column-major for the reference.
    const BinnedMatrix binned =
        bin_dataset(d, binner,
                    engine == GBDTEngine::kReference ? BinLayout::kColumnMajor
                                                     : BinLayout::kRowMajor);
    RegressionTree tree;
    tree.fit(binned, binner, grad, rows, leaf_of, cfg);
    const double lo[] = {50.0};
    const double hi[] = {150.0};
    EXPECT_NEAR(tree.predict(lo), 0.0, 0.5);
    EXPECT_NEAR(tree.predict(hi), 10.0, 0.5);
    if (engine == GBDTEngine::kHistogram) {
      // Training rows recorded their leaf, and the binned walk agrees.
      for (std::size_t r = 0; r < d.rows(); ++r) {
        EXPECT_EQ(leaf_of[r], tree.leaf_for_binned(binned, r));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Ridge regression
// ---------------------------------------------------------------------------

TEST(Ridge, RecoversLinearWeights) {
  Rng rng(21);
  Dataset d(2);
  for (int i = 0; i < 5000; ++i) {
    const double x0 = rng.normal(0.0, 1.0);
    const double x1 = rng.normal(0.0, 1.0);
    const double row[] = {x0, x1};
    d.add_row(row, 4.0 * x0 - 2.5 * x1 + 7.0 + rng.normal(0.0, 0.01));
  }
  RidgeRegression model(1e-6);
  model.fit(d);
  ASSERT_TRUE(model.trained());
  EXPECT_NEAR(model.weights()[0], 4.0, 0.01);
  EXPECT_NEAR(model.weights()[1], -2.5, 0.01);
  EXPECT_NEAR(model.intercept(), 7.0, 0.01);
}

TEST(Ridge, DegenerateFallsBackToMean) {
  Dataset d(1);
  for (int i = 0; i < 10; ++i) {
    const double row[] = {3.0};  // constant feature -> singular after ridge? no:
    d.add_row(row, 5.0);         // ridge keeps it SPD; weight ~ 0
  }
  RidgeRegression model(1.0);
  model.fit(d);
  const double probe[] = {3.0};
  EXPECT_NEAR(model.predict(probe), 5.0, 1e-6);
}

TEST(CholeskySolve, KnownSystem) {
  // A = [[4,2],[2,3]], b = [10, 8] -> x = [1.75, 1.5]
  std::vector<double> a = {4.0, 2.0, 2.0, 3.0};
  std::vector<double> b = {10.0, 8.0};
  ASSERT_TRUE(cholesky_solve(a, b, 2));
  EXPECT_NEAR(b[0], 1.75, 1e-12);
  EXPECT_NEAR(b[1], 1.5, 1e-12);
}

TEST(CholeskySolve, RejectsNonSpd) {
  std::vector<double> a = {0.0, 0.0, 0.0, 0.0};
  std::vector<double> b = {1.0, 1.0};
  EXPECT_FALSE(cholesky_solve(a, b, 2));
}

}  // namespace
}  // namespace helios::ml
