// Trace container: jobs + interned string tables + the cluster they ran on.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.h"
#include "trace/cluster_config.h"
#include "trace/job.h"

namespace helios::trace {

class Trace {
 public:
  Trace() = default;
  explicit Trace(ClusterSpec cluster) : cluster_(std::move(cluster)) {}

  /// -- construction ---------------------------------------------------------

  /// Append a job whose string fields are already interned ids.
  void add(const JobRecord& job) { jobs_.push_back(job); }

  /// Append a job given string fields; interns them.
  JobRecord& add(UnixTime submit, std::int32_t duration, std::int32_t gpus,
                 std::int32_t cpus, std::string_view user, std::string_view vc,
                 std::string_view name, JobState state);

  /// Parse one CSV data line (the load_csv schema, sans header) and append
  /// it. Returns false (without appending) for blank lines — empty or a lone
  /// '\r' from CRLF input. Throws std::runtime_error on a malformed row.
  bool append_csv_row(std::string_view line);

  /// Append all of `other`'s jobs, re-interning their user/vc/name ids into
  /// this trace's tables. Job order and all other fields are preserved; the
  /// cluster spec of `other` is ignored. This is the shard-merge primitive of
  /// trace::ParallelLoader.
  void append(const Trace& other);

  /// Stable-sort jobs by submission time (scheduler replay order).
  void sort_by_submit_time();

  /// -- access ---------------------------------------------------------------

  [[nodiscard]] const std::vector<JobRecord>& jobs() const noexcept { return jobs_; }
  [[nodiscard]] std::vector<JobRecord>& jobs() noexcept { return jobs_; }
  [[nodiscard]] std::size_t size() const noexcept { return jobs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return jobs_.empty(); }

  [[nodiscard]] const ClusterSpec& cluster() const noexcept { return cluster_; }
  [[nodiscard]] ClusterSpec& cluster() noexcept { return cluster_; }

  [[nodiscard]] const StringInterner& users() const noexcept { return users_; }
  [[nodiscard]] const StringInterner& vcs() const noexcept { return vcs_; }
  [[nodiscard]] const StringInterner& names() const noexcept { return names_; }
  [[nodiscard]] StringInterner& users() noexcept { return users_; }
  [[nodiscard]] StringInterner& vcs() noexcept { return vcs_; }
  [[nodiscard]] StringInterner& names() noexcept { return names_; }

  [[nodiscard]] const std::string& user_name(const JobRecord& j) const noexcept {
    return users_.str(j.user);
  }
  [[nodiscard]] const std::string& vc_name(const JobRecord& j) const noexcept {
    return vcs_.str(j.vc);
  }
  [[nodiscard]] const std::string& job_name(const JobRecord& j) const noexcept {
    return names_.str(j.name);
  }

  /// -- filtering ------------------------------------------------------------

  /// New trace (sharing no storage) with the jobs satisfying `pred`.
  /// Interners are copied wholesale so ids remain valid.
  [[nodiscard]] Trace filter(const std::function<bool(const JobRecord&)>& pred) const;

  /// Jobs whose submit time falls in [begin, end).
  [[nodiscard]] Trace between(UnixTime begin, UnixTime end) const;

  /// GPU jobs only / CPU jobs only.
  [[nodiscard]] Trace gpu_jobs() const;
  [[nodiscard]] Trace cpu_jobs() const;

  /// True when both traces hold the same job records and identical interner
  /// tables (ids included) — i.e. their save_csv output is byte-identical.
  /// Cluster specs are not compared.
  [[nodiscard]] bool contents_equal(const Trace& other) const noexcept;

  /// -- CSV round trip -------------------------------------------------------

  /// Schema: job_id,submit_time,start_time,duration,num_gpus,num_cpus,user,
  ///         vc,name,state  (header row included).
  void save_csv(std::ostream& out) const;
  static Trace load_csv(std::istream& in, ClusterSpec cluster);

  /// Write jobs [first, first+count) as data rows only — no header. This is
  /// the append side of a growing stream file (svc::CsvTailer consumes it)
  /// and the lossless row embedding of service checkpoints: every field is
  /// an integer or a verbatim interned string, so append_csv_row() on the
  /// output reconstructs bit-identical records (and, fed in order into a
  /// trace with the same prior interner state, identical ids).
  void save_csv_rows(std::ostream& out, std::size_t first,
                     std::size_t count) const;

 private:
  ClusterSpec cluster_;
  std::vector<JobRecord> jobs_;
  StringInterner users_;
  StringInterner vcs_;
  StringInterner names_;
};

}  // namespace helios::trace
