// Figure 5: CDFs of (a) GPU and (b) CPU job durations, per cluster.
#include <cstdio>

#include "analysis/job_stats.h"
#include "bench_common.h"
#include "common/text_table.h"
#include "stats/ecdf.h"

int main() {
  using helios::TextTable;
  namespace bench = helios::bench;
  namespace analysis = helios::analysis;
  namespace stats = helios::stats;

  bench::print_header("Figure 5", "GPU and CPU job duration CDFs per cluster");

  const auto& traces = bench::operated_helios_traces();
  for (bool gpu : {true, false}) {
    std::vector<stats::Ecdf> cdfs;
    std::vector<std::string> names;
    for (const auto& tp : traces) {
      const helios::trace::Trace& t = *tp;
      cdfs.push_back(analysis::duration_cdf(t, gpu));
      names.push_back(t.cluster().name);
    }
    TextTable table({"duration (s)", names[0], names[1], names[2], names[3]});
    for (double x : stats::log_space_points(1.0, 1e6, 13)) {
      std::vector<std::string> row = {TextTable::cell(x, 0)};
      for (const auto& cdf : cdfs) row.push_back(TextTable::cell_pct(cdf(x)));
      table.add_row(std::move(row));
    }
    std::printf("(%c) %s job durations\n%s\n", gpu ? 'a' : 'b',
                gpu ? "GPU" : "CPU", table.str().c_str());
  }

  bench::print_expectation("Earth CPU jobs ~1s", "~90% at 1 second",
                           "see Earth column in (b)");
  bench::print_expectation("GPU jobs < 1000s", "~75%", "see (a) row 1000");
  return 0;
}
