// Figure 6: CDFs of job GPU demand weighted by (a) job count and (b) GPU
// time, per cluster.
#include <cstdio>
#include <map>

#include "analysis/job_stats.h"
#include "bench_common.h"
#include "common/text_table.h"

int main() {
  using helios::TextTable;
  namespace bench = helios::bench;
  namespace analysis = helios::analysis;

  bench::print_header("Figure 6",
                      "Job-size distribution by job count and by GPU time");

  const auto& traces = bench::operated_helios_traces();
  // Collect CDF values at each power-of-two size per cluster.
  std::vector<std::map<int, std::pair<double, double>>> cdfs;  // gpus -> (job, time)
  std::vector<std::string> names;
  int max_size = 1;
  for (const auto& tp : traces) {
    const helios::trace::Trace& t = *tp;
    std::map<int, std::pair<double, double>> m;
    for (const auto& b : analysis::job_size_distribution(t)) {
      m[b.gpus] = {b.job_cdf, b.gpu_time_cdf};
      max_size = std::max(max_size, b.gpus);
    }
    cdfs.push_back(std::move(m));
    names.push_back(t.cluster().name);
  }

  for (int part = 0; part < 2; ++part) {
    TextTable table({"GPUs <=", names[0], names[1], names[2], names[3]});
    for (int g = 1; g <= max_size; g *= 2) {
      std::vector<std::string> row = {TextTable::cell(static_cast<std::int64_t>(g))};
      for (const auto& m : cdfs) {
        double v = 0.0;
        for (const auto& [gpus, cdf] : m) {
          if (gpus <= g) v = part == 0 ? cdf.first : cdf.second;
        }
        row.push_back(TextTable::cell_pct(v));
      }
      table.add_row(std::move(row));
    }
    std::printf("(%c) CDF by %s\n%s\n", part == 0 ? 'a' : 'b',
                part == 0 ? "number of jobs" : "GPU time", table.str().c_str());
  }

  bench::print_expectation(">=50% single-GPU jobs (Earth ~90%)",
                           "row 1 of (a) >= 50%", "see above");
  bench::print_expectation("single-GPU share of GPU time", "3~12%",
                           "row 1 of (b)");
  bench::print_expectation(">=8-GPU jobs' GPU time", "~60%",
                           "100% minus row 4 of (b)");
  return 0;
}
