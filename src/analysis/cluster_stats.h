// Cluster-level characterization (paper §3.1, Figures 2, 3, 4).
//
// Utilization is defined as in §2.3.1: the ratio of active GPUs to total
// GPUs, computed from the jobs' (start, end, num_gpus) intervals. The series
// is exact (busy GPU-seconds per bucket / capacity / bucket length), not a
// sampling approximation.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "stats/summary.h"
#include "trace/trace.h"

namespace helios::analysis {

/// Regular utilization (or load) series.
struct UtilizationSeries {
  UnixTime begin = 0;
  std::int64_t step = 0;           ///< bucket width, seconds
  std::vector<double> values;      ///< busy-GPU fraction per bucket, in [0, ~1]

  [[nodiscard]] std::size_t size() const noexcept { return values.size(); }
  [[nodiscard]] UnixTime time_at(std::size_t i) const noexcept {
    return begin + static_cast<UnixTime>(i) * step;
  }
};

using JobPredicate = std::function<bool(const trace::JobRecord&)>;

/// Busy GPU-seconds per bucket over [begin, end), counting jobs matching
/// `pred` (defaults to all GPU jobs). Jobs are clipped to the window.
/// Large traces are accumulated in parallel: `pred` may be invoked
/// concurrently from pool threads and must be thread-safe (stateless
/// lambdas and value captures are fine). Results are deterministic and
/// machine-independent.
[[nodiscard]] std::vector<double> busy_gpu_seconds(
    const trace::Trace& t, UnixTime begin, UnixTime end, std::int64_t step,
    const JobPredicate& pred = nullptr);

/// GPU utilization series with the trace's cluster capacity as denominator.
[[nodiscard]] UtilizationSeries utilization_series(
    const trace::Trace& t, UnixTime begin, UnixTime end, std::int64_t step,
    const JobPredicate& pred = nullptr);

/// Utilization restricted to one VC (capacity = that VC's GPUs).
[[nodiscard]] UtilizationSeries vc_utilization_series(const trace::Trace& t,
                                                      int vc_index,
                                                      UnixTime begin, UnixTime end,
                                                      std::int64_t step);

/// Average utilization per hour-of-day (Figure 2a): buckets the series by
/// the hour their midpoint falls in.
[[nodiscard]] std::array<double, 24> hourly_profile(const UtilizationSeries& s);

/// Average GPU-job submissions per hour-of-day (Figure 2b), averaged over
/// the days in [begin, end).
[[nodiscard]] std::array<double, 24> hourly_submission_rate(const trace::Trace& t,
                                                            UnixTime begin,
                                                            UnixTime end);

/// Monthly activity (Figure 3): submissions split single-/multi-GPU, plus
/// average utilization overall and from each class.
struct MonthlyActivity {
  int year = 0;
  int month = 0;
  std::int64_t single_gpu_jobs = 0;
  std::int64_t multi_gpu_jobs = 0;
  double avg_utilization = 0.0;
  double util_from_single = 0.0;
  double util_from_multi = 0.0;
};

[[nodiscard]] std::vector<MonthlyActivity> monthly_trends(const trace::Trace& t,
                                                          UnixTime begin,
                                                          UnixTime end);

/// Per-VC behaviour (Figure 4): utilization box stats (per-minute samples),
/// mean GPU demand, mean queuing delay and duration of the VC's GPU jobs.
struct VCBehavior {
  int vc_index = 0;
  std::string name;
  int gpus = 0;
  stats::BoxStats utilization;     ///< over per-minute utilization samples
  double avg_gpu_request = 0.0;
  double avg_queue_delay = 0.0;    ///< seconds (requires an operated trace)
  double avg_duration = 0.0;       ///< seconds
  std::int64_t jobs = 0;
};

/// Behaviour of every VC over [begin, end), sorted by VC size descending.
/// `minute_step` controls the utilization sampling bucket (default 60 s as
/// in the paper's "averaged per minute").
[[nodiscard]] std::vector<VCBehavior> vc_behaviors(const trace::Trace& t,
                                                   UnixTime begin, UnixTime end,
                                                   std::int64_t minute_step = 60);

}  // namespace helios::analysis
