#include "sim/simulator.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/thread_pool.h"
#include "sim/bucket_integrator.h"
#include "sim/vc_simulator.h"

namespace helios::sim {

using trace::JobRecord;
using trace::Trace;

std::string_view to_string(SchedulerPolicy p) noexcept {
  switch (p) {
    case SchedulerPolicy::kFifo:
      return "FIFO";
    case SchedulerPolicy::kSjf:
      return "SJF";
    case SchedulerPolicy::kSrtf:
      return "SRTF";
    case SchedulerPolicy::kQssf:
      return "QSSF";
    case SchedulerPolicy::kPowerCap:
      return "POWERCAP";
    case SchedulerPolicy::kEnergyQssf:
      return "EQSSF";
  }
  return "?";
}

std::span<const SchedulerPolicy> all_policies() noexcept {
  static constexpr SchedulerPolicy kAll[] = {
      SchedulerPolicy::kFifo,     SchedulerPolicy::kSjf,
      SchedulerPolicy::kSrtf,     SchedulerPolicy::kQssf,
      SchedulerPolicy::kPowerCap, SchedulerPolicy::kEnergyQssf};
  return kAll;
}

SchedulerPolicy policy_from_string(std::string_view name) {
  std::string upper(name);
  for (char& c : upper) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  for (SchedulerPolicy p : all_policies()) {
    if (upper == to_string(p)) return p;
  }
  throw std::invalid_argument("unknown scheduler policy: " + std::string(name));
}

ClusterSimulator::ClusterSimulator(trace::ClusterSpec spec, SimConfig config)
    : spec_(std::move(spec)), config_(std::move(config)) {}

SimResult ClusterSimulator::run(const Trace& t) const {
  SimResult result;
  const std::size_t n_vcs = spec_.vcs.size();

  // Map trace VC-interner ids -> cluster-spec VC indices.
  std::vector<int> vc_of_id(t.vcs().size(), -1);
  for (int vi = 0; vi < static_cast<int>(n_vcs); ++vi) {
    const auto id = t.vcs().find(spec_.vcs[static_cast<std::size_t>(vi)].name);
    if (id != StringInterner::kNotFound) vc_of_id[id] = vi;
  }

  // Collect GPU jobs (trace is sorted by submit time), pre-fill their
  // outcomes in trace order, and route each to its VC shard. Jobs whose VC
  // is not in the cluster spec are rejected immediately, exactly as the
  // event loop used to do on arrival.
  UnixTime window_begin = 0;
  UnixTime window_end = 1;
  std::vector<std::vector<std::size_t>> vc_arrivals(n_vcs);
  result.outcomes.reserve(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    const JobRecord& j = t.jobs()[i];
    if (!j.is_gpu_job()) continue;
    if (result.outcomes.empty()) window_begin = j.submit_time;
    window_end = std::max<UnixTime>(window_end, j.submit_time + j.duration + 1);
    JobOutcome o;
    o.trace_index = i;
    o.submit = j.submit_time;
    o.gpus = j.num_gpus;
    o.vc = j.vc < vc_of_id.size() ? vc_of_id[j.vc] : -1;
    const std::size_t oi = result.outcomes.size();
    if (o.vc < 0) {
      o.rejected = true;
      o.start = o.submit;
      o.end = o.submit;
      ++result.rejected_jobs;
    } else {
      vc_arrivals[static_cast<std::size_t>(o.vc)].push_back(oi);
    }
    result.outcomes.push_back(o);
  }

  // One shard per VC with jobs; each owns its nodes, queue, and series
  // accumulators, so shards share no mutable state and may run concurrently.
  std::vector<VcSimulator> shards;
  std::vector<std::size_t> shard_vc;
  shards.reserve(n_vcs);
  shard_vc.reserve(n_vcs);
  for (std::size_t vi = 0; vi < n_vcs; ++vi) {
    if (vc_arrivals[vi].empty()) continue;
    shards.emplace_back(spec_, static_cast<int>(vi), config_, window_begin);
    shard_vc.push_back(vi);
  }

  std::vector<VcSimulator::Counters> counters(shards.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(shards.size());
  for (std::size_t s = 0; s < shards.size(); ++s) {
    tasks.push_back([&, s] {
      counters[s] =
          shards[s].run(t, vc_arrivals[shard_vc[s]], result.outcomes);
    });
  }
  if (config_.execution == common::ExecMode::kSerial) {
    for (auto& task : tasks) task();
  } else {
    parallel_run_tasks(std::move(tasks));
  }

  // Deterministic merge in VC order. Every busy-segment term is an exact
  // integer product of a count and a duration (see BucketIntegrator), so the
  // merged series equals a serial accumulation bit-for-bit. The power terms
  // may carry non-integer watts (gpu_watts_fn, cap shares), but this loop
  // runs serially in VC order under BOTH exec modes, so the accumulation
  // order — and with it every double — is identical for kSerial/kParallel.
  std::vector<int> shard_of(n_vcs, -1);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    shard_of[shard_vc[s]] = static_cast<int>(s);
  }
  BucketIntegrator nodes_acc(window_begin, window_end, config_.series_step);
  BucketIntegrator gpus_acc(window_begin, window_end, config_.series_step);
  BucketIntegrator power_acc(window_begin, window_end, config_.series_step);
  // (time, ±watts) boundaries of every clamped power interval, gathered in
  // VC order for the deterministic peak sweep below.
  struct PowerEdge {
    UnixTime time = 0;
    double delta = 0.0;
  };
  std::vector<PowerEdge> edges;
  std::vector<double> vc_energy(n_vcs, 0.0);
  auto bill = [&](std::size_t vi, UnixTime t0, UnixTime t1, double watts) {
    t0 = std::max(t0, window_begin);
    t1 = std::min(t1, window_end);
    if (t1 <= t0 || watts == 0.0) return;
    vc_energy[vi] += watts * static_cast<double>(t1 - t0);
    power_acc.add(t0, t1, watts);
    edges.push_back({t0, watts});
    edges.push_back({t1, -watts});
  };
  for (std::size_t vi = 0; vi < n_vcs; ++vi) {
    if (shard_of[vi] < 0) {
      // No GPU jobs -> no shard, but the VC's nodes still idle all window.
      // (Fault events on a workload-free VC are skipped with the shard, so
      // its baseline stays the all-active draw — consistent with the fault
      // replay only existing where a shard runs.)
      const auto& vcspec = spec_.vcs[vi];
      bill(vi, window_begin, window_end,
           config_.power_profile.baseline_watts(vcspec.nodes, 0, 0, 0));
      continue;
    }
    const auto s = static_cast<std::size_t>(shard_of[vi]);
    for (const BusySegment& seg : shards[s].segments()) {
      nodes_acc.add(seg.t0, seg.t1, seg.nodes);
      gpus_acc.add(seg.t0, seg.t1, seg.gpus);
      bill(vi, seg.t0, seg.t1, seg.watts);
    }
    result.preemptions += counters[s].preemptions;
    result.rejected_jobs += counters[s].rejected;
    result.job_kills += counters[s].kills;
    result.node_failures += counters[s].failures;
  }
  result.busy_nodes = nodes_acc.mean_series();
  result.busy_gpus = gpus_acc.mean_series();
  result.power_watts = power_acc.mean_series();
  for (std::size_t vi = 0; vi < n_vcs; ++vi) {
    result.energy_joules += vc_energy[vi];
  }

  // Peak-power series: sweep the interval boundaries in time order. The
  // stable sort keeps equal-time edges in their VC-order insertion order, so
  // the running sum visits identical partial sums on every run and the peaks
  // are bit-deterministic.
  std::stable_sort(edges.begin(), edges.end(),
                   [](const PowerEdge& a, const PowerEdge& b) {
                     return a.time < b.time;
                   });
  result.peak_power_watts.begin = window_begin;
  result.peak_power_watts.step = config_.series_step;
  result.peak_power_watts.values.assign(power_acc.bucket_count(), 0.0);
  {
    auto& peak = result.peak_power_watts.values;
    double cur = 0.0;
    std::size_t b = 0;
    for (std::size_t i = 0; i < edges.size();) {
      const UnixTime t = edges[i].time;
      while (b + 1 < peak.size() &&
             t >= window_begin +
                      static_cast<UnixTime>(b + 1) * config_.series_step) {
        ++b;
        peak[b] = std::max(peak[b], cur);  // draw carries across the boundary
      }
      // Apply every edge of this instant before sampling: a segment ending
      // and another starting at the same second must not momentarily stack.
      for (; i < edges.size() && edges[i].time == t; ++i) {
        cur += edges[i].delta;
      }
      peak[b] = std::max(peak[b], cur);
    }
    for (double v : peak) {
      result.max_power_watts = std::max(result.max_power_watts, v);
    }
  }

  // ---- metrics ----------------------------------------------------------
  // Only means and counts are reported; plain integer sums are exact (JCTs
  // and delays are whole seconds) and avoid a streaming-moments division per
  // job.
  struct MeanAcc {
    std::int64_t sum = 0;
    std::int64_t count = 0;
    [[nodiscard]] double mean() const noexcept {
      return count > 0
                 ? static_cast<double>(sum) / static_cast<double>(count)
                 : 0.0;
    }
  };
  MeanAcc jct;
  MeanAcc delay;
  std::vector<MeanAcc> vc_delay(n_vcs);
  std::vector<MeanAcc> vc_jct(n_vcs);
  for (const auto& o : result.outcomes) {
    if (o.rejected) continue;
    if (o.start == trace::kNeverStarted || o.end == trace::kNeverStarted) {
      // Never started inside the horizon (or killed by a failure and never
      // rescheduled): no completion time exists, so the job cannot enter the
      // JCT/delay means — but it *was* delayed past any threshold, so it
      // counts as queued instead of vanishing from the stats entirely.
      ++result.unfinished_jobs;
      ++result.queued_jobs;
      continue;
    }
    jct.sum += o.jct();
    ++jct.count;
    delay.sum += o.queue_delay();
    ++delay.count;
    if (o.queue_delay() >= config_.queued_threshold) ++result.queued_jobs;
    if (o.vc >= 0) {
      auto& vd = vc_delay[static_cast<std::size_t>(o.vc)];
      auto& vj = vc_jct[static_cast<std::size_t>(o.vc)];
      vd.sum += o.queue_delay();
      ++vd.count;
      vj.sum += o.jct();
      ++vj.count;
    }
  }
  result.avg_jct = jct.mean();
  result.avg_queue_delay = delay.mean();
  result.vc_stats.reserve(n_vcs);
  for (std::size_t vi = 0; vi < n_vcs; ++vi) {
    VCStat s;
    s.name = spec_.vcs[vi].name;
    s.gpus = spec_.vcs[vi].total_gpus();
    s.jobs = vc_jct[vi].count;
    s.avg_queue_delay = vc_delay[vi].mean();
    s.avg_jct = vc_jct[vi].mean();
    s.energy_joules = vc_energy[vi];
    result.vc_stats.push_back(std::move(s));
  }
  return result;
}

std::size_t apply_schedule(Trace& t, const SimResult& result) {
  std::size_t updated = 0;
  for (const auto& o : result.outcomes) {
    // Rejected jobs carry start == submit as a sentinel for reporting, but
    // they never ran — writing that back would fabricate a schedule for a
    // job the cluster refused (and count it as updated).
    if (o.rejected || o.start == trace::kNeverStarted) continue;
    t.jobs()[o.trace_index].start_time = o.start;
    ++updated;
  }
  return updated;
}

SimResult operate_fifo(Trace& t, std::int64_t series_step) {
  SimConfig cfg;
  cfg.policy = SchedulerPolicy::kFifo;
  cfg.series_step = series_step;
  cfg.backfill = true;  // match the production scheduler's behaviour
  ClusterSimulator sim(t.cluster(), cfg);
  SimResult r = sim.run(t);
  apply_schedule(t, r);
  return r;
}

}  // namespace helios::sim
