#include "common/civil_time.h"

#include <array>
#include <cstdio>

namespace helios {

std::int64_t days_from_civil(int y, int m, int d) noexcept {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);             // [0, 399]
  const unsigned doy = (153u * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;            // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

void civil_from_days(std::int64_t z, int& year, int& month, int& day) noexcept {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);            // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);            // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                                 // [0, 11]
  day = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  month = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  year = static_cast<int>(y + (month <= 2));
}

CivilTime to_civil(UnixTime t) noexcept {
  CivilTime c;
  std::int64_t days = t / kSecondsPerDay;
  std::int64_t rem = t % kSecondsPerDay;
  if (rem < 0) {
    rem += kSecondsPerDay;
    --days;
  }
  civil_from_days(days, c.year, c.month, c.day);
  c.hour = static_cast<int>(rem / kSecondsPerHour);
  c.minute = static_cast<int>((rem % kSecondsPerHour) / kSecondsPerMinute);
  c.second = static_cast<int>(rem % kSecondsPerMinute);
  // 1970-01-01 (day 0) was a Thursday; Monday-based index of Thursday is 3.
  c.weekday = static_cast<int>(((days % 7) + 7 + 3) % 7);
  c.yday = static_cast<int>(days - days_from_civil(c.year, 1, 1));
  return c;
}

UnixTime from_civil(int year, int month, int day, int hour, int minute,
                    int second) noexcept {
  return days_from_civil(year, month, day) * kSecondsPerDay +
         hour * kSecondsPerHour + minute * kSecondsPerMinute + second;
}

int weekday_of(UnixTime t) noexcept { return to_civil(t).weekday; }

int hour_of(UnixTime t) noexcept {
  std::int64_t rem = t % kSecondsPerDay;
  if (rem < 0) rem += kSecondsPerDay;
  return static_cast<int>(rem / kSecondsPerHour);
}

int minute_of_day(UnixTime t) noexcept {
  std::int64_t rem = t % kSecondsPerDay;
  if (rem < 0) rem += kSecondsPerDay;
  return static_cast<int>(rem / kSecondsPerMinute);
}

UnixTime floor_day(UnixTime t) noexcept {
  std::int64_t rem = t % kSecondsPerDay;
  if (rem < 0) rem += kSecondsPerDay;
  return t - rem;
}

UnixTime floor_hour(UnixTime t) noexcept {
  std::int64_t rem = t % kSecondsPerHour;
  if (rem < 0) rem += kSecondsPerHour;
  return t - rem;
}

bool is_holiday(UnixTime t) noexcept {
  const CivilTime c = to_civil(t);
  if (c.is_weekend()) return true;
  if (c.year != 2020) return false;
  const int md = c.month * 100 + c.day;
  // 2020 mainland-China public holidays overlapping Apr-Dec.
  return (md >= 501 && md <= 505) ||   // Labour Day
         (md >= 625 && md <= 627) ||   // Dragon Boat Festival
         (md >= 1001 && md <= 1008);   // National Day / Mid-Autumn
}

std::string format_time(UnixTime t) {
  const CivilTime c = to_civil(t);
  std::array<char, 32> buf{};
  std::snprintf(buf.data(), buf.size(), "%04d-%02d-%02d %02d:%02d:%02d", c.year,
                c.month, c.day, c.hour, c.minute, c.second);
  return buf.data();
}

std::string format_date(UnixTime t) {
  const CivilTime c = to_civil(t);
  std::array<char, 16> buf{};
  std::snprintf(buf.data(), buf.size(), "%04d-%02d-%02d", c.year, c.month, c.day);
  return buf.data();
}

}  // namespace helios
