// Shared helpers for the reproduction harnesses.
//
// Every bench binary regenerates one table or figure from the paper. They
// share: the workload scale knob (HELIOS_SCALE / HELIOS_SEED), a process-wide
// cache of generated traces, and uniform experiment headers so the combined
// bench output reads like the paper's evaluation section.
#pragma once

#include <string>
#include <vector>

#include "core/ces_service.h"
#include "core/qssf_service.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"
#include "trace/trace.h"

namespace helios::bench {

/// Workload scale for this process (HELIOS_SCALE, default 0.25).
[[nodiscard]] double scale();

/// RNG seed for this process (HELIOS_SEED, default 42).
[[nodiscard]] std::uint64_t seed();

/// The four Helios traces, generated once per process and cached.
[[nodiscard]] const std::vector<trace::Trace>& helios_traces();

/// The Philly trace, generated once per process and cached.
[[nodiscard]] const trace::Trace& philly_trace();

/// Prints the standard experiment banner:
///   experiment id, paper reference, scale/seed, free-form notes.
void print_header(const std::string& experiment, const std::string& title,
                  const std::string& notes = "");

/// Prints a "paper reports vs. we measure" comparison line.
void print_expectation(const std::string& what, const std::string& paper,
                       const std::string& measured);

/// The Helios traces *operated under FIFO* (start times assigned by the
/// simulator, as Slurm did for the real trace). Cached per process.
[[nodiscard]] const std::vector<trace::Trace>& operated_helios_traces();
[[nodiscard]] const trace::Trace& operated_philly_trace();

/// One scheduler-comparison experiment (§4.2.3 protocol): train QSSF on
/// [trace begin, train_end), evaluate all four policies on GPU jobs
/// submitted in [train_end, eval_end).
struct SchedulerStudy {
  trace::Trace eval;  ///< evaluation window slice (GPU + CPU jobs)
  sim::SimResult fifo;
  sim::SimResult sjf;
  sim::SimResult srtf;
  sim::SimResult qssf;
  std::vector<double> qssf_predicted_gpu_time;  ///< aligned with actual below
  std::vector<double> qssf_actual_gpu_time;
};

[[nodiscard]] SchedulerStudy run_scheduler_study(const trace::Trace& full,
                                                 UnixTime train_end,
                                                 UnixTime eval_end);

/// One CES experiment (§4.3.3 protocol): fit a GBDT node forecaster on the
/// FIFO-operated running-nodes series before eval_begin, replay
/// [eval_begin, eval_end) under Algorithm 2 (and optionally vanilla DRS).
struct CesStudy {
  core::CesResult ces;
  core::CesResult vanilla;
};

[[nodiscard]] CesStudy run_ces_study(const trace::Trace& operated,
                                     UnixTime eval_begin, UnixTime eval_end,
                                     bool include_vanilla = true);

/// JCT values (seconds) from a sim result, excluding rejected jobs.
[[nodiscard]] std::vector<double> jct_values(const sim::SimResult& r);

/// Queue-delay values (seconds) from a sim result.
[[nodiscard]] std::vector<double> queue_delay_values(const sim::SimResult& r);

}  // namespace helios::bench
