// Full §3-style characterization of one cluster: the analyses behind
// Figures 2 and 5-9, as a library-consumer walkthrough.
//
// Usage: ./build/example_characterize_cluster [cluster|trace.csv] [scale]
//
// Given a Helios cluster name, a synthetic trace is generated and operated
// under FIFO; given a path to a trace CSV (the Trace::save_csv schema), the
// file is ingested with the parallel loader and analyzed as recorded.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "analysis/cluster_stats.h"
#include "analysis/job_stats.h"
#include "analysis/user_stats.h"
#include "sim/simulator.h"
#include "trace/parallel_loader.h"
#include "trace/synthetic.h"

int main(int argc, char** argv) {
  using namespace helios;
  const std::string cluster = argc > 1 ? argv[1] : "Saturn";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.1;

  trace::Trace t;
  UnixTime begin = trace::helios_trace_begin();
  UnixTime end = trace::helios_trace_end();
  const bool from_csv =
      cluster.size() > 4 && cluster.rfind(".csv") == cluster.size() - 4;
  if (from_csv) {
    trace::ClusterSpec spec;
    spec.name = cluster;
    trace::LoadOptions opts;
    opts.sort_by_submit_time = true;
    t = trace::ParallelLoader(opts).load_file(cluster, spec);
    if (t.empty()) {
      std::fprintf(stderr, "%s: no jobs\n", cluster.c_str());
      return 1;
    }
    // Analyze the trace's own time span; the file does not say how big the
    // cluster was, so estimate capacity as the peak concurrent GPU demand
    // (event sweep over start/end, not an hourly average, which would
    // undersize bursty traces).
    begin = t.jobs().front().submit_time;
    end = begin;
    std::vector<std::pair<std::int64_t, std::int32_t>> events;
    for (const auto& j : t.jobs()) {
      end = std::max<UnixTime>(end, std::max(j.submit_time, j.end_time()) + 1);
      if (j.started() && j.num_gpus > 0) {
        events.emplace_back(j.start_time, j.num_gpus);
        events.emplace_back(j.end_time(), -j.num_gpus);
      }
    }
    std::sort(events.begin(), events.end());
    std::int64_t concurrent = 0;
    std::int64_t peak = 0;
    for (const auto& [when, delta] : events) {
      concurrent += delta;
      peak = std::max(peak, concurrent);
    }
    t.cluster().gpus_per_node = 1;
    t.cluster().nodes = static_cast<int>(peak);
  } else {
    auto cfg = trace::GeneratorConfig::helios(trace::helios_cluster(cluster),
                                              42, scale);
    t = trace::SyntheticTraceGenerator(cfg).generate();
    sim::operate_fifo(t);  // assign start times the way Slurm did
  }

  if (from_csv) {  // scale does not apply to a recorded trace
    std::printf("=== %s: %zu jobs, peak %d GPUs ===\n\n", cluster.c_str(),
                t.size(), t.cluster().total_gpus());
  } else {
    std::printf("=== %s (scale %.2f): %zu jobs ===\n\n", cluster.c_str(), scale,
                t.size());
  }

  // Cluster level: utilization profile (Figure 2a).
  const auto util = analysis::utilization_series(t, begin, end, 3600);
  const auto hourly = analysis::hourly_profile(util);
  std::printf("hourly utilization profile:\n  ");
  for (int h = 0; h < 24; ++h) std::printf("%02d:%4.0f%% ", h, 100 * hourly[static_cast<std::size_t>(h)]);
  std::printf("\n\n");

  // Job level: durations and sizes (Figures 5-6).
  const auto gpu_cdf = analysis::duration_cdf(t, true);
  std::printf("GPU job durations: p25 %.0fs  median %.0fs  p75 %.0fs  p99 %.0fs\n",
              gpu_cdf.inverse(0.25), gpu_cdf.inverse(0.5), gpu_cdf.inverse(0.75),
              gpu_cdf.inverse(0.99));
  std::printf("job-size mix (share of jobs / share of GPU time):\n");
  for (const auto& b : analysis::job_size_distribution(t)) {
    if (b.job_fraction < 0.002) continue;
    std::printf("  %4d GPUs: %5.1f%% / %5.1f%%\n", b.gpus, 100 * b.job_fraction,
                100 * b.gpu_time_fraction);
  }

  // Status level (Figure 7).
  const auto by_state = analysis::gpu_time_by_state(t);
  std::printf("GPU time by status: %.1f%% completed / %.1f%% canceled / %.1f%% failed\n\n",
              100 * by_state[0], 100 * by_state[1], 100 * by_state[2]);

  // User level (Figures 8-9).
  const auto users = analysis::user_aggregates(t);
  std::vector<double> gpu_time;
  std::vector<double> delays;
  for (const auto& u : users) {
    gpu_time.push_back(u.gpu_time);
    delays.push_back(u.queue_delay);
  }
  std::printf("users: %zu; top 5%% hold %.1f%% of GPU time and %.1f%% of queuing\n",
              users.size(), 100 * analysis::top_share(gpu_time, 0.05),
              100 * analysis::top_share(delays, 0.05));

  // VC level (Figure 4). Skipped for CSV traces, whose cluster spec does not
  // carry VC shapes.
  if (from_csv) return 0;
  std::printf("\nlargest VCs (May):\n");
  const auto vcs = analysis::vc_behaviors(t, from_civil(2020, 5, 1),
                                          from_civil(2020, 6, 1));
  for (std::size_t i = 0; i < std::min<std::size_t>(5, vcs.size()); ++i) {
    std::printf("  %-6s %4d GPUs  median util %5.1f%%  avg req %.1f GPUs  "
                "avg delay %.0fs\n",
                vcs[i].name.c_str(), vcs[i].gpus, 100 * vcs[i].utilization.median,
                vcs[i].avg_gpu_request, vcs[i].avg_queue_delay);
  }
  return 0;
}
