#include "sweep/scenario.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <span>
#include <tuple>

#include "common/text_table.h"
#include "stats/summary.h"

namespace helios::sweep {

std::string ScenarioSpec::label() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, " seed=%llu scale=%g",
                static_cast<unsigned long long>(workload.key.seed),
                workload.key.scale);
  std::string s = workload.name + "/" + std::string(to_string(policy)) + buf;
  if (backfill) s += " +backfill";
  if (fault.enabled()) s += " faults=" + fault.name;
  if (power.name != "uncapped") s += " power=" + power.name;
  return s;
}

std::vector<ScenarioSpec> SweepGrid::expand() const {
  std::vector<ScenarioSpec> cells;
  cells.reserve(cell_count());
  for (const auto& cluster : clusters) {
    for (double scale : scales) {
      for (std::uint64_t seed : seeds) {
        WorkloadSpec w;
        w.name = cluster;
        w.key = TraceKey::workload(cluster, seed, scale, operated);
        for (auto policy : policies) {
          for (bool bf : backfills) {
            for (const auto& fault : faults) {
              for (const auto& power : powers) {
                ScenarioSpec s;
                s.workload = w;
                s.policy = policy;
                s.backfill = bf;
                s.fault = fault;
                s.power = power;
                cells.push_back(std::move(s));
              }
            }
          }
        }
      }
    }
  }
  return cells;
}

std::size_t SweepGrid::cell_count() const noexcept {
  return clusters.size() * scales.size() * seeds.size() * policies.size() *
         backfills.size() * faults.size() * powers.size();
}

bool results_identical(const sim::SimResult& a,
                       const sim::SimResult& b) noexcept {
  if (a.outcomes.size() != b.outcomes.size()) return false;
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    const sim::JobOutcome& x = a.outcomes[i];
    const sim::JobOutcome& y = b.outcomes[i];
    if (x.trace_index != y.trace_index || x.submit != y.submit ||
        x.start != y.start || x.end != y.end || x.gpus != y.gpus ||
        x.kills != y.kills || x.vc != y.vc || x.rejected != y.rejected) {
      return false;
    }
  }
  if (a.avg_jct != b.avg_jct || a.avg_queue_delay != b.avg_queue_delay ||
      a.queued_jobs != b.queued_jobs || a.preemptions != b.preemptions ||
      a.rejected_jobs != b.rejected_jobs ||
      a.unfinished_jobs != b.unfinished_jobs || a.job_kills != b.job_kills ||
      a.node_failures != b.node_failures) {
    return false;
  }
  if (a.vc_stats.size() != b.vc_stats.size()) return false;
  for (std::size_t v = 0; v < a.vc_stats.size(); ++v) {
    const sim::VCStat& x = a.vc_stats[v];
    const sim::VCStat& y = b.vc_stats[v];
    if (x.name != y.name || x.gpus != y.gpus || x.jobs != y.jobs ||
        x.avg_queue_delay != y.avg_queue_delay || x.avg_jct != y.avg_jct ||
        x.energy_joules != y.energy_joules) {
      return false;
    }
  }
  if (a.energy_joules != b.energy_joules ||
      a.max_power_watts != b.max_power_watts) {
    return false;
  }
  auto series_identical = [](const forecast::TimeSeries& s,
                             const forecast::TimeSeries& t) {
    return s.begin == t.begin && s.step == t.step && s.values == t.values;
  };
  return series_identical(a.busy_nodes, b.busy_nodes) &&
         series_identical(a.busy_gpus, b.busy_gpus) &&
         series_identical(a.power_watts, b.power_watts) &&
         series_identical(a.peak_power_watts, b.peak_power_watts);
}

namespace {

/// The (scale, backfill, fault, power) slice a cell reports under; seeds
/// aggregate within a slice, workloads are columns, policies are rows.
struct SliceKey {
  double scale;
  bool backfill;
  std::string fault;
  std::string power;
  [[nodiscard]] friend auto operator<=>(const SliceKey&, const SliceKey&) = default;
};

std::string slice_title(const SliceKey& k) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "scale=%g", k.scale);
  std::string s = buf;
  if (k.backfill) s += ", backfill";
  if (k.fault != "none") s += ", faults=" + k.fault;
  if (k.power != "uncapped") s += ", power=" + k.power;
  return s;
}

}  // namespace

std::string comparison_report(const SweepResult& sweep) {
  // Group: slice -> (policy row, workload column) -> per-seed values.
  std::map<SliceKey, std::map<std::pair<std::string, std::string>,
                              std::vector<const sim::SimResult*>>>
      slices;
  std::vector<std::string> workload_order;
  std::vector<std::string> policy_order;
  for (const CellResult& c : sweep.cells) {
    const SliceKey key{c.spec.workload.key.scale, c.spec.backfill,
                       c.spec.fault.name, c.spec.power.name};
    const std::string policy{to_string(c.spec.policy)};
    slices[key][{policy, c.spec.workload.name}].push_back(&c.result);
    if (std::find(workload_order.begin(), workload_order.end(),
                  c.spec.workload.name) == workload_order.end()) {
      workload_order.push_back(c.spec.workload.name);
    }
    if (std::find(policy_order.begin(), policy_order.end(), policy) ==
        policy_order.end()) {
      policy_order.push_back(policy);
    }
  }

  struct Metric {
    const char* title;
    double (*value)(const sim::SimResult&);
    int precision;
  };
  const Metric metrics[] = {
      {"Average JCT (s)",
       [](const sim::SimResult& r) { return r.avg_jct; }, 0},
      {"Average queuing time (s)",
       [](const sim::SimResult& r) { return r.avg_queue_delay; }, 0},
      {"# of queued jobs",
       [](const sim::SimResult& r) {
         return static_cast<double>(r.queued_jobs);
       },
       0},
      {"Energy (kWh)",
       [](const sim::SimResult& r) { return r.energy_joules / 3.6e6; }, 1},
  };

  std::string out;
  for (const auto& [slice, grid] : slices) {
    out += "== " + slice_title(slice) + " ==\n";
    for (const Metric& m : metrics) {
      std::vector<std::string> header = {""};
      header.insert(header.end(), workload_order.begin(), workload_order.end());
      TextTable table(std::move(header));
      for (const auto& policy : policy_order) {
        std::vector<std::string> row = {policy};
        for (const auto& workload : workload_order) {
          auto it = grid.find({policy, workload});
          if (it == grid.end()) {
            row.emplace_back("-");
            continue;
          }
          std::vector<double> vals;
          vals.reserve(it->second.size());
          for (const sim::SimResult* r : it->second) {
            vals.push_back(m.value(*r));
          }
          row.push_back(TextTable::cell(stats::median(vals), m.precision));
        }
        table.add_row(std::move(row));
      }
      out += std::string(m.title) + "\n" + table.str() + "\n";
    }
  }
  return out;
}

}  // namespace helios::sweep
