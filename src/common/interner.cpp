#include "common/interner.h"

namespace helios {

std::uint32_t StringInterner::intern(std::string_view s) {
  auto it = index_.find(std::string(s));
  if (it != index_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(strings_.back(), id);
  return id;
}

std::uint32_t StringInterner::find(std::string_view s) const noexcept {
  auto it = index_.find(std::string(s));
  return it == index_.end() ? kNotFound : it->second;
}

}  // namespace helios
