// Quasi-Shortest-Service-First scheduling service (paper §4.2, Algorithm 1).
//
// Assigns every incoming job a priority P = N * (λ * P_R + (1-λ) * P_M):
//   * P_R — rolling estimate from the user's history:
//       - unknown user           -> mean duration of all jobs with the same
//                                   GPU demand,
//       - user known, new name   -> mean duration of this user's jobs with
//                                   the same GPU demand,
//       - similar name found     -> exponentially-weighted mean of the
//                                   durations of name-matched jobs
//                                   (Levenshtein similarity),
//   * P_M — GBDT estimate from encoded job attributes (user, VC, bucketized
//     name, GPU/CPU demand, submission-time calendar features),
//   * N   — requested GPU count, turning the duration estimate into expected
//     GPU time (the paper ranks by GPU time, not duration, so that large
//     short jobs don't starve behind small ones).
// The scheduler then runs jobs in ascending priority (sim::SchedulerPolicy::
// kQssf). Lower P = expected-shorter service = runs first.
//
// Determinism: fit(), observe(), and the evaluator are pure functions of
// their inputs and the service's prior state — no wall clock, no unseeded
// randomness. OnlinePriorityEvaluator's chunked mode is bit-identical to the
// serial loop for any window or thread count (test_prediction_parity), and a
// service restored from save() (docs/FORMATS.md, "QSSF" frame) produces
// bit-identical priorities and estimates (test_serialize) — including the
// dedupe keys, so replaying an already-observed trace into a warm-restarted
// service still cannot double-count.
//
// Thread-safety: QssfService and RollingEstimator are externally
// synchronized — fit()/update()/observe()/load() mutate and must be
// exclusive; the const estimate/predict accessors are safe to share across
// threads between mutations (predict-time name bucketing is memoized behind
// logical constness, so even const use requires external synchronization if
// callers race on previously-unseen job names). OnlinePriorityEvaluator
// parallelizes internally on the shared global_pool() and is safe to read
// from any thread once constructed.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <memory_resource>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/arena.h"
#include "common/exec_mode.h"
#include "core/framework.h"
#include "ml/gbdt.h"
#include "ml/levenshtein.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace helios::serialize {
class Reader;
class Writer;
}  // namespace helios::serialize

namespace helios::core {

struct QssfConfig {
  /// Merge coefficient λ between the rolling and the GBDT estimate.
  double lambda = 0.45;
  /// Normalised Levenshtein distance below which two job names "match".
  /// 0.20 keeps "_v2"-style variants together while separating different
  /// templates of the same user ("train_bert" vs "eval_bert").
  double name_match_threshold = 0.20;
  /// Exponential decay applied to older name-matched durations.
  double rolling_decay = 0.75;
  /// Per-user cap on remembered name entries (oldest evicted).
  std::size_t max_names_per_user = 64;
  /// GBDT hyper-parameters; max_training_rows caps fit cost on huge traces.
  ml::GBDTConfig gbdt = default_gbdt_config();
  /// Limited-information mode (paper §6.2 future work: "some attributes in
  /// our services may not be available in other clusters"): when false, job
  /// names are ignored — the rolling estimator skips name matching and the
  /// GBDT drops the name-bucket feature.
  bool use_names = true;

  [[nodiscard]] static ml::GBDTConfig default_gbdt_config();
};

/// The rolling half of Algorithm 1: per-user duration history with
/// Levenshtein name matching, plus cluster-wide fallbacks. Split out of the
/// service as a copyable value so the windowed OnlinePriorityEvaluator can
/// snapshot and replay it deterministically on the thread pool.
///
/// Every finished job is folded in at most once, keyed by a hash of its
/// identity content (job_id, submit time, duration, demand, user), so
/// feeding an overlapping or cumulative trace cannot double-count history —
/// and traces from a different lineage (ids restart at 0) still observe.
class RollingEstimator {
 public:
  RollingEstimator() = default;
  explicit RollingEstimator(const QssfConfig& config)
      : use_names_(config.use_names),
        name_match_threshold_(config.name_match_threshold),
        rolling_decay_(config.rolling_decay),
        max_names_per_user_(config.max_names_per_user) {}

  /// Construct with the per-user map and dedupe set backed by `mr` — the
  /// RollingOverlay points its delta at a per-window MonotonicArena so the
  /// many short-lived node allocations of a snapshot bump-allocate instead
  /// of hitting the global heap. The default constructor (and the plain
  /// copies below, via select_on_container_copy_construction) stay on the
  /// default resource, so estimators that outlive a window never reference
  /// an arena.
  explicit RollingEstimator(std::pmr::memory_resource* mr)
      : users_(mr), observed_ids_(mr) {}

  /// Allocator-extended copy: every field copies, container storage lands
  /// on `mr` (the overlay's copy constructor rebinds a snapshot's delta to
  /// its own fresh arena).
  RollingEstimator(const RollingEstimator& other, std::pmr::memory_resource* mr)
      : use_names_(other.use_names_),
        name_match_threshold_(other.name_match_threshold_),
        rolling_decay_(other.rolling_decay_),
        max_names_per_user_(other.max_names_per_user_),
        users_(other.users_, mr),
        global_by_gpus_(other.global_by_gpus_),
        global_duration_sum_(other.global_duration_sum_),
        global_jobs_(other.global_jobs_),
        observe_counter_(other.observe_counter_),
        observed_ids_(other.observed_ids_, mr) {}

  RollingEstimator(const RollingEstimator&) = default;
  RollingEstimator(RollingEstimator&&) = default;
  RollingEstimator& operator=(const RollingEstimator&) = default;
  RollingEstimator& operator=(RollingEstimator&&) = default;

  /// Absorb one finished GPU job (idempotent per job_id).
  void observe(const trace::Trace& t, const trace::JobRecord& job);

  /// Expected duration (seconds) of an incoming job, Algorithm 1 lines 13-18.
  [[nodiscard]] double estimate(const trace::Trace& t,
                                const trace::JobRecord& job) const;

  /// Trace-free overload for callers that hold raw strings instead of a
  /// Trace (the serving layer's query path); the Trace overload delegates
  /// here, so both are the same algorithm.
  [[nodiscard]] double estimate(const std::string& user,
                                const std::string& job_name,
                                int num_gpus) const;

  [[nodiscard]] std::int64_t observed_jobs() const noexcept { return global_jobs_; }

  /// Persist / restore the full rolling state ("ROLL" section,
  /// docs/FORMATS.md): per-user histories (GPU-demand sums, name EWMAs with
  /// their eviction clocks), the cluster-wide fallbacks, and the observed-id
  /// dedupe set — so a restored estimator both estimates bit-identically and
  /// keeps skipping jobs the saved one had already folded in. Throws
  /// serialize::Error on malformed input.
  void save(serialize::Writer& w) const;
  void load(serialize::Reader& r);

 private:
  friend class RollingOverlay;  // copy-on-write view; reads the raw maps

  struct NameEntry {
    std::string name;
    double ewma_duration = 0.0;
    double weight = 0.0;
    std::uint64_t last_seen = 0;  // insertion counter, for eviction
  };
  struct UserHistory {
    std::unordered_map<int, std::pair<double, std::int64_t>> by_gpus;  // sum, n
    double duration_sum = 0.0;
    std::int64_t jobs = 0;
    std::vector<NameEntry> names;
  };

  [[nodiscard]] const NameEntry* find_name(const UserHistory& u,
                                           const std::string& name) const;

  bool use_names_ = true;
  double name_match_threshold_ = 0.20;
  double rolling_decay_ = 0.75;
  std::size_t max_names_per_user_ = 64;

  /// Content-hash identity of a job for the observe dedupe set.
  [[nodiscard]] static std::uint64_t dedupe_key(
      const trace::JobRecord& job) noexcept;

  // The two node-heavy containers are pmr so an overlay delta can point
  // them at its window arena; everything reachable from UserHistory
  // (strings, inner maps, name vectors) stays on the default heap — the
  // arena absorbs the map nodes and bucket arrays, which dominate the
  // allocation count of a snapshot.
  std::pmr::unordered_map<std::string, UserHistory> users_;
  std::unordered_map<int, std::pair<double, std::int64_t>> global_by_gpus_;
  double global_duration_sum_ = 0.0;
  std::int64_t global_jobs_ = 0;
  std::uint64_t observe_counter_ = 0;
  std::pmr::unordered_set<std::uint64_t> observed_ids_;  // content-hash keys
};

/// Copy-on-write view over an immutable shared RollingEstimator. Reads fall
/// through to the base; an observe materializes only the touched user's
/// history into a private delta estimator (whose global fallbacks are live
/// from construction, since they advance with every observe). Copying an
/// overlay copies the delta, not the base — which is what makes windowed
/// evaluation snapshots cheap: n windows share one multi-month base and each
/// carries only the users its prefix of the observe stream touched.
///
/// Bit-parity contract: observe() delegates to RollingEstimator::observe on
/// the delta after seeding it with the base's state for that user, and
/// estimate() routes each user to whichever side owns its history, so an
/// overlay is observationally bit-identical to a plain estimator that
/// started from a copy of the base (test_prediction_parity gates this
/// through the chunked-vs-serial evaluator comparison).
///
/// Thread-safety: like RollingEstimator, externally synchronized; distinct
/// overlays over the same base may be used from distinct threads freely
/// (the base is never written through this class).
class RollingOverlay {
 public:
  RollingOverlay();
  explicit RollingOverlay(std::shared_ptr<const RollingEstimator> base);

  /// Copying an overlay (the evaluator's per-window snapshot) allocates a
  /// fresh arena and rebinds the copied delta to it, so each snapshot owns
  /// its storage and windows free their arena wholesale when they finish.
  RollingOverlay(const RollingOverlay& other);
  RollingOverlay& operator=(const RollingOverlay& other);
  /// Moves transfer the arena and delta as pointers — no element traffic,
  /// and no pmr element-wise move-assignment across unequal resources.
  RollingOverlay(RollingOverlay&&) noexcept = default;
  RollingOverlay& operator=(RollingOverlay&& other) noexcept;
  ~RollingOverlay() = default;

  /// Absorb one finished GPU job (idempotent per job identity, across both
  /// the base's and the delta's dedupe sets).
  void observe(const trace::Trace& t, const trace::JobRecord& job);

  [[nodiscard]] double estimate(const trace::Trace& t,
                                const trace::JobRecord& job) const;
  [[nodiscard]] double estimate(const std::string& user,
                                const std::string& job_name,
                                int num_gpus) const;

  /// Flatten base + delta into a standalone estimator (one full base copy —
  /// the windowed evaluator calls this once, for the final window's state).
  [[nodiscard]] RollingEstimator materialize() const;

  /// Users whose histories the delta owns (introspection for tests).
  [[nodiscard]] std::size_t delta_users() const noexcept {
    return delta_->users_.size();
  }
  /// Bytes the delta has bump-allocated from this overlay's arena.
  [[nodiscard]] std::size_t arena_bytes() const noexcept {
    return arena_->bytes_used();
  }

 private:
  std::shared_ptr<const RollingEstimator> base_;  // null = plain estimator
  // arena_ is declared before delta_: members destroy in reverse order, so
  // the delta's containers deallocate (a no-op, but still a virtual call)
  // against a live arena. The custom move-assignment preserves the same
  // property on overwrite.
  std::unique_ptr<common::MonotonicArena> arena_;
  std::unique_ptr<RollingEstimator> delta_;
};

/// A job described by raw strings plus pre-resolved feature ids — the query
/// shape of the serving layer (svc::), which prices jobs that have no Trace
/// row yet. user_id/vc_id must be resolved against the interners of the
/// trace the service learned from (an unseen value maps to interner size,
/// the id a fresh intern would have received — svc::Snapshot does this).
struct JobQuery {
  std::string user;          ///< submitting user (rolling-estimator key)
  std::string job_name;      ///< job name (name match + bucket feature)
  std::uint32_t user_id = 0; ///< trace interner id of `user`
  std::uint32_t vc_id = 0;   ///< trace interner id of the virtual cluster
  std::int32_t num_gpus = 1;
  std::int32_t num_cpus = 0;
  UnixTime submit_time = 0;
};

class QssfService final : public Service {
 public:
  explicit QssfService(QssfConfig config = {});

  [[nodiscard]] std::string name() const override { return "qssf"; }

  /// Train the GBDT and seed the rolling estimator from a historical trace
  /// (the paper trains on April-August and evaluates on September).
  void fit(const trace::Trace& history);

  /// Model Update Engine hook: absorb finished jobs into the rolling
  /// estimator (already-seen job ids are skipped, so cumulative feeds are
  /// safe) and refresh the GBDT on the given trace.
  void update(const trace::Trace& new_data) override;

  /// Absorb a single finished job into the rolling estimator (no GBDT refit).
  void observe(const trace::Trace& t, const trace::JobRecord& job);

  /// Expected duration (seconds) of an incoming job.
  [[nodiscard]] double predict_duration(const trace::Trace& t,
                                        const trace::JobRecord& job) const;

  /// Algorithm 1's Priority(): expected GPU time, lower first.
  [[nodiscard]] double priority(const trace::Trace& t,
                                const trace::JobRecord& job) const;

  /// Rolling estimate alone / GBDT estimate alone (for the λ ablation).
  [[nodiscard]] double rolling_estimate(const trace::Trace& t,
                                        const trace::JobRecord& job) const;
  [[nodiscard]] double ml_estimate(const trace::Trace& t,
                                   const trace::JobRecord& job) const;

  /// Frozen-service variants of predict_duration()/priority() for the
  /// concurrent query path (svc::PredictionServer snapshots): never mutate —
  /// the job name goes through the const NameBucketizer::lookup(), with an
  /// unseen name mapped to bucket_count(), exactly the id the mutating path
  /// would mint for it — so any number of threads may call these on a shared
  /// service with no synchronization, and for a name the service has already
  /// priced once the result is bit-identical to the Trace-based accessors.
  [[nodiscard]] double predict_duration(const JobQuery& query) const;
  [[nodiscard]] double priority(const JobQuery& query) const;

  /// λ-merge of the two estimates scaled to GPU time — the single definition
  /// of Priority() shared by the serial and the windowed evaluation paths.
  [[nodiscard]] static double combine(const QssfConfig& config, double rolling,
                                      double ml, const trace::JobRecord& job) {
    return static_cast<double>(std::max(1, job.num_gpus)) *
           (config.lambda * rolling + (1.0 - config.lambda) * ml);
  }

  /// Encode the given jobs into a GBDT feature matrix, warming the name
  /// buckets in job order (the same order the serial path would).
  [[nodiscard]] ml::Dataset encode_jobs(
      const trace::Trace& t, std::span<const std::uint32_t> job_indices) const;

  [[nodiscard]] const QssfConfig& config() const noexcept { return config_; }
  [[nodiscard]] bool trained() const noexcept { return model_.trained(); }
  [[nodiscard]] const ml::GBDTRegressor& model() const noexcept { return model_; }
  [[nodiscard]] const RollingEstimator& rolling() const noexcept { return rolling_; }

  /// Persist the whole service ("QSSF" frame, docs/FORMATS.md): config,
  /// GBDT model, name buckets, and rolling state. Wrap with
  /// serialize::save_file to snapshot; load() into a fresh service
  /// warm-restarts it — predictions and priorities are bit-identical to the
  /// saved instance, with no history replay or refit.
  void save(serialize::Writer& w) const;
  void load(serialize::Reader& r);

 private:
  friend class OnlinePriorityEvaluator;  // snapshots / adopts rolling_

  static constexpr std::size_t kFeatureCount = 9;
  void encode(const trace::Trace& t, const trace::JobRecord& job,
              std::vector<double>& out) const;
  /// Same feature layout as encode(), from a JobQuery, never mutating the
  /// name buckets — the two must stay column-for-column identical.
  void encode_frozen(const JobQuery& query, std::vector<double>& out) const;

  QssfConfig config_;
  ml::GBDTRegressor model_;
  mutable ml::NameBucketizer name_buckets_;  // grows lazily at predict time
  RollingEstimator rolling_;
};

/// Pending-finish replay queue: a min-heap of (finish, index) events, popped
/// in (finish, then index) total order — identical however the heap was
/// assembled. This is the one heap-op sequence every causal replay site
/// shares; the chunked evaluator's bit-parity with the serial loop, and the
/// streaming svc::PredictionServer's bit-parity with the batch evaluator,
/// both depend on every site executing it identically. Externally
/// synchronized, like the estimators it feeds.
class ReplayQueue {
 public:
  struct Entry {
    std::int64_t finish = 0;   ///< approximate finish: submit + duration
    std::uint32_t index = 0;   ///< caller-defined job index (tie-break)
  };

  /// Queue the job's finish event under the given index.
  void push(const trace::JobRecord& job, std::uint32_t index) {
    heap_.push_back({job.submit_time + job.duration, index});
    std::push_heap(heap_.begin(), heap_.end(), after);
  }

  /// Pop every entry with finish <= now in (finish, index) order, invoking
  /// observe(index) for each.
  template <class ObserveFn>
  void drain(std::int64_t now, ObserveFn&& observe) {
    while (!heap_.empty() && heap_.front().finish <= now) {
      std::pop_heap(heap_.begin(), heap_.end(), after);
      const std::uint32_t index = heap_.back().index;
      heap_.pop_back();
      observe(index);
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  /// Raw heap storage, for checkpointing; feed back through restore().
  [[nodiscard]] const std::vector<Entry>& entries() const noexcept {
    return heap_;
  }
  /// Adopt entries() output verbatim (the storage is already heap-ordered).
  void restore(std::vector<Entry> entries) { heap_ = std::move(entries); }

 private:
  static bool after(const Entry& a, const Entry& b) noexcept {
    return a.finish != b.finish ? a.finish > b.finish : a.index > b.index;
  }

  std::vector<Entry> heap_;
};

struct EvalOptions {
  /// kParallel evaluates deterministic replay windows concurrently on the
  /// shared pool, with the GBDT estimates batched through predict_many —
  /// bit-identical to kSerial (the retained job-by-job loop) for any window
  /// or thread count.
  common::ExecMode execution = common::ExecMode::kParallel;
  /// Smallest window, in GPU jobs.
  std::size_t min_window = 1024;
  /// Cap on the window count; 0 = auto (the pool width). Tests force small
  /// windows to exercise the replay machinery on any machine.
  std::size_t max_windows = 0;
};

/// Evaluates QSSF priorities for a stream of jobs in submission order while
/// honouring causality: a job is folded into the rolling estimator only once
/// its (approximate) finish time submit+duration has passed. This mirrors
/// the deployed Model Update Engine, which fine-tunes from jobs as they
/// terminate. Returns a PriorityFn suitable for sim::SimConfig after
/// precomputing priorities for every GPU job of `eval`.
///
/// The chunked mode splits the stream into contiguous replay windows: a
/// serial pre-pass replays only the (cheap) observe stream, snapshotting a
/// copy-on-write RollingOverlay (all windows share the immutable pre-eval
/// rolling state; each snapshot carries only the user histories its prefix
/// touched) plus the pending-finish ReplayQueue at each window boundary;
/// windows then replay concurrently from their snapshots while the GBDT
/// half of every priority comes from one batched predict_many pass. Because
/// each window replays exactly the observes the serial path would apply,
/// the result — and the service's final rolling state — is bit-identical to
/// kSerial.
class OnlinePriorityEvaluator {
 public:
  OnlinePriorityEvaluator(QssfService& service, const trace::Trace& eval,
                          EvalOptions options = {});

  /// Priority for a trace job (precomputed; keyed by job_id).
  [[nodiscard]] double priority_of(const trace::JobRecord& job) const;

  /// Adapter for the simulator.
  [[nodiscard]] sim::PriorityFn as_priority_fn() const;

  /// Prediction quality over the evaluated jobs: predicted vs actual GPU time.
  [[nodiscard]] const std::vector<double>& predicted_gpu_time() const noexcept {
    return predicted_;
  }
  [[nodiscard]] const std::vector<double>& actual_gpu_time() const noexcept {
    return actual_;
  }

 private:
  void run_serial(QssfService& service, const trace::Trace& eval);
  void run_chunked(QssfService& service, const trace::Trace& eval,
                   const EvalOptions& options);

  std::unordered_map<std::uint64_t, double> priorities_;
  std::vector<double> predicted_;
  std::vector<double> actual_;
};

}  // namespace helios::core
